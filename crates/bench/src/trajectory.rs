//! The perf-trajectory harness behind the `spq-bench` binary.
//!
//! Runs the fig7-uniform and fig9-clustered workloads across all three
//! algorithms, twice each: once through the current zero-copy pipeline
//! (shared dataset, handle records, sort-free grouping) and once through
//! the fossilised pre-refactor [`crate::baseline`] tasks (cloned
//! payloads, full reducer sort). Medians per phase, shuffle record
//! counts and a bytes-per-record estimate go to `BENCH_PR2.json`, so
//! every future PR can ship a comparable number.

use crate::baseline::{
    BaselineESpqLenTask, BaselineESpqScoTask, BaselinePSpqTask, ClonedPayload, ClonedSlimPayload,
    COUNTER_SHUFFLE_HEAP_BYTES,
};
use crate::params::{
    scaled, DEFAULT_GRID_SYNTH, DEFAULT_KEYWORDS, DEFAULT_RADIUS_PCT, DEFAULT_SIZE_CL,
    DEFAULT_SIZE_UN, DEFAULT_TOPK,
};
use spq_core::algo::espq_len::LenKey;
use spq_core::algo::espq_sco::ScoKey;
use spq_core::algo::pspq::PSpqKey;
use spq_core::algo::ObjectHandle;
use spq_core::merge::merge_top_k;
use spq_core::{Algorithm, RankedObject, SpqExecutor};
use spq_data::{ClusteredGen, DatasetGenerator, KeywordSelection, QueryGenerator, UniformGen};
use spq_mapreduce::{ClusterConfig, JobRunner, JobStats};
use spq_spatial::{Grid, Rect, SpacePartition};
use std::time::Duration;

/// Configuration of one trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// Multiplier on the harness default dataset sizes.
    pub scale: f64,
    /// RNG seed for datasets and queries.
    pub seed: u64,
    /// Worker threads for map/reduce tasks.
    pub workers: usize,
    /// Timed repetitions per (workload, algorithm, path); medians are
    /// taken across these.
    pub repeats: usize,
    /// Distinct queries averaged inside each repetition.
    pub queries: usize,
    /// Grid cells per axis.
    pub grid: u32,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        Self {
            scale: 0.02,
            seed: 2017,
            workers: std::thread::available_parallelism().map_or(8, |n| n.get()),
            repeats: 5,
            queries: 3,
            grid: DEFAULT_GRID_SYNTH,
        }
    }
}

/// Median wall-clock per job phase, in milliseconds.
#[derive(Debug, Clone, Copy)]
pub struct PhaseMedians {
    /// Map phase.
    pub map_ms: f64,
    /// Shuffle (partition + run concatenation).
    pub shuffle_ms: f64,
    /// Reduce phase (including any reducer-side sorting).
    pub reduce_ms: f64,
    /// End-to-end job.
    pub total_ms: f64,
}

/// One measured pipeline variant (baseline or current).
#[derive(Debug, Clone, Copy)]
pub struct PathMeasurement {
    /// Median per-phase wall-clock across repeats (summed over queries).
    pub phases: PhaseMedians,
    /// Records crossing the shuffle, summed over the query batch
    /// (deterministic — identical across repeats).
    pub shuffle_records: u64,
    /// Estimated shuffle bytes per record: `size_of::<(Key, Value)>()`
    /// plus measured keyword-clone heap bytes averaged over the records.
    pub bytes_per_record: f64,
}

/// Baseline vs current, one algorithm.
#[derive(Debug, Clone)]
pub struct AlgoComparison {
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// The pre-refactor cloned-payload path.
    pub baseline: PathMeasurement,
    /// The zero-copy handle path.
    pub current: PathMeasurement,
}

impl AlgoComparison {
    /// End-to-end speedup of the current path (baseline / current).
    pub fn speedup(&self) -> f64 {
        self.baseline.phases.total_ms / self.current.phases.total_ms.max(1e-9)
    }

    /// Shuffle bytes-per-record shrink factor (baseline / current).
    pub fn bytes_per_record_ratio(&self) -> f64 {
        self.baseline.bytes_per_record / self.current.bytes_per_record.max(1e-9)
    }
}

/// One workload's comparisons.
#[derive(Debug, Clone)]
pub struct WorkloadReport {
    /// Workload id (`fig7-uniform`, `fig9-clustered`).
    pub id: &'static str,
    /// Total objects in the generated dataset.
    pub objects: usize,
    /// Per-algorithm comparisons, in [`Algorithm::ALL`] order.
    pub comparisons: Vec<AlgoComparison>,
}

fn median_ms(samples: Vec<Duration>) -> f64 {
    // Through the shared stats module: linear interpolation at rank
    // (n−1)/2 is the exact middle (odd n) or midpoint average (even n),
    // matching the hand-rolled median this replaces.
    criterion::stats::Sample::new(
        samples
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .collect::<Vec<_>>(),
    )
    .percentile(0.50)
}

/// Accumulates one query batch's stats into per-phase duration sums.
#[derive(Default)]
struct PhaseSums {
    map: Duration,
    shuffle: Duration,
    reduce: Duration,
    total: Duration,
    shuffle_records: u64,
    heap_bytes: u64,
}

impl PhaseSums {
    fn add(&mut self, stats: &JobStats) {
        self.map += stats.map_wall;
        self.shuffle += stats.shuffle_wall;
        self.reduce += stats.reduce_wall;
        self.total += stats.total_wall;
        self.shuffle_records += stats.shuffle_records;
        self.heap_bytes += stats.counters.get(COUNTER_SHUFFLE_HEAP_BYTES);
    }
}

fn summarize(repeats: Vec<PhaseSums>, flat_record_bytes: usize) -> PathMeasurement {
    let shuffle_records = repeats[0].shuffle_records;
    let heap_bytes = repeats[0].heap_bytes;
    let bytes_per_record = flat_record_bytes as f64
        + if shuffle_records > 0 {
            heap_bytes as f64 / shuffle_records as f64
        } else {
            0.0
        };
    PathMeasurement {
        phases: PhaseMedians {
            map_ms: median_ms(repeats.iter().map(|r| r.map).collect()),
            shuffle_ms: median_ms(repeats.iter().map(|r| r.shuffle).collect()),
            reduce_ms: median_ms(repeats.iter().map(|r| r.reduce).collect()),
            total_ms: median_ms(repeats.iter().map(|r| r.total).collect()),
        },
        shuffle_records,
        bytes_per_record,
    }
}

/// Runs both workloads at the configured scale.
pub fn run_trajectory(cfg: &TrajectoryConfig) -> Vec<WorkloadReport> {
    vec![
        run_workload(cfg, "fig7-uniform", &UniformGen, DEFAULT_SIZE_UN),
        run_workload(cfg, "fig9-clustered", &ClusteredGen, DEFAULT_SIZE_CL),
    ]
}

fn run_workload(
    cfg: &TrajectoryConfig,
    id: &'static str,
    gen: &dyn DatasetGenerator,
    base_size: usize,
) -> WorkloadReport {
    let size = scaled(base_size, cfg.scale);
    eprintln!("[{id}] generating {size} objects");
    let dataset = gen.generate(size, cfg.seed);
    let (shared, ref_splits) = dataset.to_shared_splits(cfg.workers.max(4));
    let owned_splits = dataset.to_splits(cfg.workers.max(4));

    let cell = 1.0 / cfg.grid as f64;
    let mut qgen = QueryGenerator::new(dataset.vocab_size, KeywordSelection::Random, cfg.seed ^ 7);
    let queries = qgen.batch(
        cfg.queries,
        DEFAULT_TOPK,
        cell * DEFAULT_RADIUS_PCT / 100.0,
        DEFAULT_KEYWORDS,
    );
    let grid: SpacePartition = Grid::square(Rect::unit(), cfg.grid).into();
    let runner = JobRunner::new(ClusterConfig::with_workers(cfg.workers));

    let comparisons = Algorithm::ALL
        .iter()
        .map(|&algorithm| {
            eprintln!("[{id}] {algorithm}: {} repeats x 2 paths", cfg.repeats);
            let exec = SpqExecutor::new(Rect::unit())
                .algorithm(algorithm)
                .grid_size(cfg.grid)
                .cluster(ClusterConfig::with_workers(cfg.workers));

            let mut current_tops: Vec<RankedObject> = Vec::new();
            let current_reps: Vec<PhaseSums> = (0..cfg.repeats.max(1))
                .map(|_| {
                    let mut sums = PhaseSums::default();
                    current_tops.clear();
                    for q in &queries {
                        let res = exec.run_shared(&shared, &ref_splits, q).expect("job");
                        sums.add(&res.stats);
                        current_tops.extend(res.top_k);
                    }
                    sums
                })
                .collect();

            let mut baseline_tops: Vec<RankedObject> = Vec::new();
            let baseline_reps: Vec<PhaseSums> = (0..cfg.repeats.max(1))
                .map(|_| {
                    let mut sums = PhaseSums::default();
                    baseline_tops.clear();
                    for q in &queries {
                        let out = match algorithm {
                            Algorithm::PSpq => runner
                                .run(&BaselinePSpqTask::new(&grid, q), &owned_splits)
                                .expect("job"),
                            Algorithm::ESpqLen => runner
                                .run(&BaselineESpqLenTask::new(&grid, q), &owned_splits)
                                .expect("job"),
                            Algorithm::ESpqSco => runner
                                .run(&BaselineESpqScoTask::new(&grid, q), &owned_splits)
                                .expect("job"),
                        };
                        sums.add(&out.stats);
                        baseline_tops.extend(merge_top_k(out.into_flat(), q.k));
                    }
                    sums
                })
                .collect();

            assert_eq!(
                current_tops, baseline_tops,
                "{algorithm}: zero-copy path diverged from the baseline"
            );

            let (flat_current, flat_baseline) = record_sizes(algorithm);
            AlgoComparison {
                algorithm,
                baseline: summarize(baseline_reps, flat_baseline),
                current: summarize(current_reps, flat_current),
            }
        })
        .collect();

    WorkloadReport {
        id,
        objects: dataset.total(),
        comparisons,
    }
}

/// Flat `(Key, Value)` record sizes of the current and baseline layouts.
fn record_sizes(algorithm: Algorithm) -> (usize, usize) {
    use std::mem::size_of;
    match algorithm {
        Algorithm::PSpq => (
            size_of::<(PSpqKey, ObjectHandle)>(),
            size_of::<(PSpqKey, ClonedPayload)>(),
        ),
        Algorithm::ESpqLen => (
            size_of::<(LenKey, ObjectHandle)>(),
            size_of::<(LenKey, ClonedPayload)>(),
        ),
        Algorithm::ESpqSco => (
            size_of::<(ScoKey, spq_core::ObjectRef)>(),
            size_of::<(ScoKey, ClonedSlimPayload)>(),
        ),
    }
}

fn json_path(m: &PathMeasurement, indent: &str) -> String {
    format!(
        "{{\n{i}  \"median_ms\": {{ \"map\": {:.3}, \"shuffle\": {:.3}, \"reduce\": {:.3}, \"total\": {:.3} }},\n{i}  \"shuffle_records\": {},\n{i}  \"bytes_per_record\": {:.2}\n{i}}}",
        m.phases.map_ms,
        m.phases.shuffle_ms,
        m.phases.reduce_ms,
        m.phases.total_ms,
        m.shuffle_records,
        m.bytes_per_record,
        i = indent,
    )
}

/// Renders the reports as the `BENCH_PR2.json` document.
pub fn to_json(cfg: &TrajectoryConfig, reports: &[WorkloadReport]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"bench\": \"spq-bench trajectory\",\n  \"config\": {{ \"scale\": {}, \"seed\": {}, \"workers\": {}, \"repeats\": {}, \"queries\": {}, \"grid\": {} }},\n",
        cfg.scale, cfg.seed, cfg.workers, cfg.repeats, cfg.queries, cfg.grid
    ));
    out.push_str("  \"workloads\": [\n");
    for (wi, w) in reports.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"id\": \"{}\",\n      \"objects\": {},\n      \"algorithms\": [\n",
            w.id, w.objects
        ));
        for (ci, c) in w.comparisons.iter().enumerate() {
            out.push_str(&format!(
                "        {{\n          \"name\": \"{}\",\n          \"baseline\": {},\n          \"current\": {},\n          \"speedup\": {:.2},\n          \"bytes_per_record_ratio\": {:.2}\n        }}{}\n",
                c.algorithm.name(),
                json_path(&c.baseline, "          "),
                json_path(&c.current, "          "),
                c.speedup(),
                c.bytes_per_record_ratio(),
                if ci + 1 < w.comparisons.len() { "," } else { "" },
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if wi + 1 < reports.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_trajectory_runs_and_renders() {
        let cfg = TrajectoryConfig {
            scale: 1e-9, // clamps to the 1k-object floor
            repeats: 1,
            queries: 1,
            workers: 2,
            ..TrajectoryConfig::default()
        };
        let reports = run_trajectory(&cfg);
        assert_eq!(reports.len(), 2);
        for w in &reports {
            assert_eq!(w.comparisons.len(), 3);
            for c in &w.comparisons {
                // The handle layout must beat the cloned layout on flat
                // size alone; heap bytes only widen the gap.
                assert!(
                    c.bytes_per_record_ratio() >= 2.0,
                    "{}: bytes ratio {}",
                    c.algorithm,
                    c.bytes_per_record_ratio()
                );
            }
        }
        let json = to_json(&cfg, &reports);
        assert!(json.contains("\"fig7-uniform\""));
        assert!(json.contains("\"bytes_per_record_ratio\""));
    }

    #[test]
    fn median_of_even_and_odd_samples() {
        let ms = |v: u64| Duration::from_millis(v);
        assert_eq!(median_ms(vec![ms(3), ms(1), ms(2)]), 2.0);
        assert_eq!(median_ms(vec![ms(4), ms(1), ms(2), ms(3)]), 2.5);
    }
}
