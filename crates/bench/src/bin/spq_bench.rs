//! The perf-trajectory binary: `cargo run -p spq-bench --release`.
//!
//! Flags are parsed by [`spq_bench::cli`] (see [`spq_bench::cli::USAGE`]).
//! Two operating modes:
//!
//! 1. **Generated datasets** (default): writes the zero-copy trajectory
//!    (`BENCH_PR2.json` — fig7-uniform + fig9-clustered vs the fossilised
//!    pre-refactor baseline) and the serving throughput document
//!    (`BENCH_PR3.json` — rebuild vs the persistent `QueryEngine` modes).
//! 2. **Loaded dataset** (`--data-tsv F --features-tsv F`): ingests an
//!    external TSV dump (optionally synthesizing it first with
//!    `--synthesize N`), benches the four serving modes over it with
//!    byte-identity asserted against the in-memory path, and writes
//!    `BENCH_INGEST.json` including ingest throughput in objects/sec.

use spq_bench::backend_bench::{
    backend_to_json, run_backend_bench, BackendBenchConfig, BackendSource,
};
use spq_bench::cli::{
    parse_args, BackendCli, CliOptions, Command, CompareCli, IngestCli, MatrixCli, USAGE,
};
use spq_bench::ingest_bench::{ingest_to_json, run_ingest_bench, IngestReport};
use spq_bench::matrix::{compare_files, run_matrix};
use spq_bench::qps::{qps_to_json, run_qps};
use spq_bench::trajectory::{run_trajectory, to_json};
use spq_data::ingest::{synthesize_dump, DumpConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(Command::Run(options)) => *options,
        Ok(Command::Matrix(matrix)) => {
            run_matrix_mode(&matrix);
            return;
        }
        Ok(Command::Compare(compare)) => {
            run_compare_mode(&compare);
            return;
        }
        Ok(Command::Help) => {
            eprintln!("{USAGE}");
            return;
        }
        Err(message) => {
            eprintln!("{message}\n{USAGE}");
            std::process::exit(2)
        }
    };

    if let Some(backend) = &options.backend {
        run_backend_mode(backend, &options);
        return;
    }

    if let Some(ingest) = options.ingest {
        run_ingest_mode(&ingest);
        return;
    }

    let reports = run_trajectory(&options.trajectory);
    let json = to_json(&options.trajectory, &reports);
    std::fs::write(&options.out, &json).expect("write bench report");

    println!("wrote {}", options.out);
    for w in &reports {
        println!("\n{} ({} objects):", w.id, w.objects);
        println!(
            "  {:<10}{:>14}{:>14}{:>10}{:>12}{:>12}{:>8}",
            "algorithm", "baseline ms", "current ms", "speedup", "B/rec old", "B/rec new", "ratio"
        );
        for c in &w.comparisons {
            println!(
                "  {:<10}{:>14.2}{:>14.2}{:>9.2}x{:>12.1}{:>12.1}{:>7.1}x",
                c.algorithm.name(),
                c.baseline.phases.total_ms,
                c.current.phases.total_ms,
                c.speedup(),
                c.baseline.bytes_per_record,
                c.current.bytes_per_record,
                c.bytes_per_record_ratio(),
            );
        }
    }

    let qps_report = run_qps(&options.qps);
    let qps_json = qps_to_json(&options.qps, &qps_report);
    std::fs::write(&options.qps_out, &qps_json).expect("write qps report");

    println!("\nwrote {}", options.qps_out);
    println!(
        "\n{} ({} objects, {} queries, batch {}, {} workers):",
        qps_report.id,
        qps_report.objects,
        options.qps.queries,
        options.qps.batch,
        options.qps.workers
    );
    print_modes(&qps_report.algorithms);
}

/// `spq-bench matrix`: runs the declarative benchmark matrix and writes
/// the versioned `BENCH_MATRIX.json` document.
fn run_matrix_mode(matrix: &MatrixCli) {
    let report = run_matrix(&matrix.config);
    std::fs::write(&matrix.out, report.to_json()).expect("write matrix report");
    println!("wrote {} ({} records)", matrix.out, report.records.len());
    println!(
        "\n{:<52}{:>9}{:>24}{:>24}{:>10}",
        "benchmark", "qps", "mean ms [95% CI]", "p99 ms [95% CI]", "outliers"
    );
    for r in &report.records {
        println!(
            "{:<52}{:>9.1}{:>10.3} [{:.3}, {:.3}]{:>10.3} [{:.3}, {:.3}]{:>10}",
            r.id,
            r.qps,
            r.mean_ms.point,
            r.mean_ms.lo,
            r.mean_ms.hi,
            r.p99_ms.point,
            r.p99_ms.lo,
            r.p99_ms.hi,
            r.outliers.total()
        );
    }
    if !report.records.is_empty() {
        println!("\nall records byte-identical to the single-store engine");
    }
}

/// `spq-bench compare`: the regression gate. Exit 0 = clean, 1 = at
/// least one id regressed, 2 = a document was unreadable.
fn run_compare_mode(compare: &CompareCli) {
    let comparison = match compare_files(
        std::path::Path::new(&compare.baseline),
        std::path::Path::new(&compare.candidate),
        compare.threshold,
    ) {
        Ok(comparison) => comparison,
        Err(message) => {
            eprintln!("compare failed: {message}");
            std::process::exit(2)
        }
    };
    println!("{}", comparison.to_markdown());
    if comparison.regressions() > 0 {
        std::process::exit(1)
    }
}

/// The backend-matrix mode: `--backend` (repeatable), writing
/// `BENCH_PR5.json`. Uses the dump paths when given (synthesizing first
/// when asked), a generated dataset otherwise.
fn run_backend_mode(backend: &BackendCli, options: &CliOptions) {
    let source = match &options.ingest {
        Some(ingest) => {
            synthesize_if_requested(ingest);
            BackendSource::Loaded {
                data_tsv: ingest.config.data_tsv.clone(),
                features_tsv: ingest.config.features_tsv.clone(),
            }
        }
        None => BackendSource::Generated {
            scale: options.trajectory.scale,
        },
    };
    let cfg = BackendBenchConfig {
        backends: backend.backends.clone(),
        source,
        seed: options.trajectory.seed,
        workers: options.trajectory.workers,
        queries: backend.queries,
        batch: backend.batch,
        grid: options.trajectory.grid,
        ..BackendBenchConfig::default()
    };
    let report = match run_backend_bench(&cfg) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("backend bench failed: {e}");
            std::process::exit(1)
        }
    };
    let json = backend_to_json(&cfg, &report);
    std::fs::write(&backend.out, &json).expect("write backend report");

    println!("wrote {}", backend.out);
    println!(
        "\n{} ({} objects, {} requests, batch {}, {} workers) — all backends byte-identical to the single-store engine:",
        report.id, report.objects, cfg.queries, cfg.batch, cfg.workers
    );
    for section in &report.backends {
        println!(
            "  backend {} (built in {:.0} ms):",
            section.backend, section.build_ms
        );
        for a in &section.algorithms {
            println!(
                "    {}: shards/query {:.1}, wire B/query {:.0}, plan-cache hit rate {:.2}",
                a.algorithm.name(),
                a.stats.mean_shards_touched,
                a.stats.mean_shuffle_bytes,
                a.stats.plan_cache_hit_rate
            );
            for m in &a.modes {
                println!(
                    "      {:<14}{:>10.1} qps{:>12.3} p50 ms{:>12.3} p99 ms",
                    m.id, m.qps, m.p50_ms, m.p99_ms
                );
            }
        }
    }
}

fn synthesize_if_requested(ingest: &IngestCli) {
    if let Some(objects) = ingest.synthesize {
        let summary = synthesize_dump(
            &DumpConfig {
                objects,
                seed: ingest.config.seed,
            },
            &ingest.config.data_tsv,
            &ingest.config.features_tsv,
        )
        .expect("synthesize dump");
        println!(
            "synthesized {} data + {} feature objects ({} keywords) into {} / {}",
            summary.data_objects,
            summary.feature_objects,
            summary.keywords,
            ingest.config.data_tsv.display(),
            ingest.config.features_tsv.display()
        );
    }
}

fn run_ingest_mode(ingest: &IngestCli) {
    synthesize_if_requested(ingest);

    let report: IngestReport = match run_ingest_bench(&ingest.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("ingest failed: {e}");
            std::process::exit(1)
        }
    };
    let json = ingest_to_json(&ingest.config, &report);
    std::fs::write(&ingest.out, &json).expect("write ingest report");

    println!("wrote {}", ingest.out);
    let i = &report.ingest;
    println!(
        "\n{}: {} objects ({} data + {} features), {} vocabulary terms",
        report.id, i.objects, i.data_objects, i.feature_objects, i.vocab_terms
    );
    println!(
        "  ingest: {:.0} ms, {:.0} objects/s ({} lines, {} skipped)",
        i.wall_ms, i.objects_per_sec, i.lines, i.skipped
    );
    println!("  all serving modes byte-identical to the in-memory rebuild path");
    print_modes(&report.algorithms);
}

fn print_modes(algorithms: &[spq_bench::qps::QpsAlgoReport]) {
    for a in algorithms {
        println!("  {}:", a.algorithm.name());
        println!(
            "    {:<14}{:>10}{:>12}{:>12}{:>14}",
            "mode", "qps", "p50 ms", "p99 ms", "vs rebuild"
        );
        for m in &a.modes {
            println!(
                "    {:<14}{:>10.1}{:>12.3}{:>12.3}{:>13.2}x",
                m.id,
                m.qps,
                m.p50_ms,
                m.p99_ms,
                a.qps_vs_rebuild(m.id),
            );
        }
    }
}
