//! The perf-trajectory binary: `cargo run -p spq-bench --release`.
//!
//! ```text
//! spq-bench [--scale F] [--seed N] [--workers N] [--repeats N]
//!           [--queries N] [--grid N] [--out FILE]
//! ```
//!
//! Runs the fig7-uniform and fig9-clustered workloads across all three
//! algorithms through both the current zero-copy pipeline and the
//! fossilised pre-refactor baseline, and writes median wall-clock per
//! phase, shuffle record counts and bytes-per-record estimates to
//! `BENCH_PR2.json` (override with `--out`).

use spq_bench::trajectory::{run_trajectory, to_json, TrajectoryConfig};

fn usage() -> ! {
    eprintln!(
        "usage: spq-bench [--scale F] [--seed N] [--workers N] [--repeats N] \
         [--queries N] [--grid N] [--out FILE]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TrajectoryConfig::default();
    let mut out_path = String::from("BENCH_PR2.json");

    let next = |i: &mut usize, args: &[String]| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => cfg.scale = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--repeats" => cfg.repeats = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--queries" => cfg.queries = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--grid" => cfg.grid = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = next(&mut i, &args),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }

    let reports = run_trajectory(&cfg);
    let json = to_json(&cfg, &reports);
    std::fs::write(&out_path, &json).expect("write bench report");

    println!("wrote {out_path}");
    for w in &reports {
        println!("\n{} ({} objects):", w.id, w.objects);
        println!(
            "  {:<10}{:>14}{:>14}{:>10}{:>12}{:>12}{:>8}",
            "algorithm", "baseline ms", "current ms", "speedup", "B/rec old", "B/rec new", "ratio"
        );
        for c in &w.comparisons {
            println!(
                "  {:<10}{:>14.2}{:>14.2}{:>9.2}x{:>12.1}{:>12.1}{:>7.1}x",
                c.algorithm.name(),
                c.baseline.phases.total_ms,
                c.current.phases.total_ms,
                c.speedup(),
                c.baseline.bytes_per_record,
                c.current.bytes_per_record,
                c.bytes_per_record_ratio(),
            );
        }
    }
}
