//! The perf-trajectory binary: `cargo run -p spq-bench --release`.
//!
//! ```text
//! spq-bench [--scale F] [--seed N] [--workers N] [--repeats N]
//!           [--queries N] [--grid N] [--out FILE]
//!           [--qps-queries N] [--qps-batch N] [--qps-out FILE]
//! ```
//!
//! Two sections, each writing its own trajectory document:
//!
//! 1. **Zero-copy trajectory** (`BENCH_PR2.json`): the fig7-uniform and
//!    fig9-clustered workloads across all three algorithms through the
//!    current zero-copy pipeline and the fossilised pre-refactor baseline
//!    (median wall-clock per phase, shuffle records, bytes per record).
//! 2. **Serving throughput** (`BENCH_PR3.json`): the fig7-uniform QPS
//!    workload through the per-query-rebuild lifecycle and the persistent
//!    `QueryEngine` (sequential, batched, concurrent) — queries/sec and
//!    p50/p99 latency per mode.

use spq_bench::qps::{qps_to_json, run_qps, QpsConfig};
use spq_bench::trajectory::{run_trajectory, to_json, TrajectoryConfig};

fn usage() -> ! {
    eprintln!(
        "usage: spq-bench [--scale F] [--seed N] [--workers N] [--repeats N] \
         [--queries N] [--grid N] [--out FILE] \
         [--qps-queries N] [--qps-batch N] [--qps-out FILE]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = TrajectoryConfig::default();
    let mut qps_cfg = QpsConfig::default();
    let mut out_path = String::from("BENCH_PR2.json");
    let mut qps_out_path = String::from("BENCH_PR3.json");

    let next = |i: &mut usize, args: &[String]| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => cfg.scale = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--repeats" => cfg.repeats = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--queries" => cfg.queries = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--grid" => cfg.grid = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--out" => out_path = next(&mut i, &args),
            "--qps-queries" => {
                qps_cfg.queries = next(&mut i, &args).parse().unwrap_or_else(|_| usage())
            }
            "--qps-batch" => {
                qps_cfg.batch = next(&mut i, &args).parse().unwrap_or_else(|_| usage())
            }
            "--qps-out" => qps_out_path = next(&mut i, &args),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }
    // The QPS section follows the shared knobs.
    qps_cfg.scale = cfg.scale;
    qps_cfg.seed = cfg.seed;
    qps_cfg.workers = cfg.workers;
    qps_cfg.grid = cfg.grid;

    let reports = run_trajectory(&cfg);
    let json = to_json(&cfg, &reports);
    std::fs::write(&out_path, &json).expect("write bench report");

    println!("wrote {out_path}");
    for w in &reports {
        println!("\n{} ({} objects):", w.id, w.objects);
        println!(
            "  {:<10}{:>14}{:>14}{:>10}{:>12}{:>12}{:>8}",
            "algorithm", "baseline ms", "current ms", "speedup", "B/rec old", "B/rec new", "ratio"
        );
        for c in &w.comparisons {
            println!(
                "  {:<10}{:>14.2}{:>14.2}{:>9.2}x{:>12.1}{:>12.1}{:>7.1}x",
                c.algorithm.name(),
                c.baseline.phases.total_ms,
                c.current.phases.total_ms,
                c.speedup(),
                c.baseline.bytes_per_record,
                c.current.bytes_per_record,
                c.bytes_per_record_ratio(),
            );
        }
    }

    let qps_report = run_qps(&qps_cfg);
    let qps_json = qps_to_json(&qps_cfg, &qps_report);
    std::fs::write(&qps_out_path, &qps_json).expect("write qps report");

    println!("\nwrote {qps_out_path}");
    println!(
        "\n{} ({} objects, {} queries, batch {}, {} workers):",
        qps_report.id, qps_report.objects, qps_cfg.queries, qps_cfg.batch, qps_cfg.workers
    );
    for a in &qps_report.algorithms {
        println!("  {}:", a.algorithm.name());
        println!(
            "    {:<14}{:>10}{:>12}{:>12}{:>14}",
            "mode", "qps", "p50 ms", "p99 ms", "vs rebuild"
        );
        for m in &a.modes {
            println!(
                "    {:<14}{:>10.1}{:>12.3}{:>12.3}{:>13.2}x",
                m.id,
                m.qps,
                m.p50_ms,
                m.p99_ms,
                a.qps_vs_rebuild(m.id),
            );
        }
    }
}
