//! Regenerates the paper's figures as console tables and CSV files.
//!
//! ```text
//! experiments [--all] [--figure fig5]... [--scale F] [--seed N]
//!             [--workers N] [--queries N] [--sim-slots N] [--out DIR]
//!             [--no-csv] [--list]
//! ```
//!
//! Examples:
//!
//! * `experiments --all` — every figure at the harness default scale.
//! * `experiments --figure fig8 --scale 4` — scalability sweep at 4× the
//!   default sizes (closer to the paper's 512M, given enough patience).

use spq_bench::figures::{run_and_render, FIGURES};
use spq_bench::BenchConfig;

fn usage() -> ! {
    eprintln!(
        "usage: experiments [--all] [--figure <id>]... [--scale F] [--seed N] \
         [--workers N] [--queries N] [--sim-slots N] [--out DIR] [--no-csv] [--list]\n\
         figures: {}",
        FIGURES.join(", ")
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = BenchConfig::default();
    let mut figures: Vec<String> = Vec::new();
    let mut i = 0;

    let next = |i: &mut usize, args: &[String]| -> String {
        *i += 1;
        args.get(*i).cloned().unwrap_or_else(|| usage())
    };

    while i < args.len() {
        match args[i].as_str() {
            "--all" => figures = FIGURES.iter().map(|s| (*s).to_owned()).collect(),
            "--figure" => figures.push(next(&mut i, &args)),
            "--scale" => cfg.scale = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--seed" => cfg.seed = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--workers" => cfg.workers = next(&mut i, &args).parse().unwrap_or_else(|_| usage()),
            "--queries" => {
                cfg.queries_per_point = next(&mut i, &args).parse().unwrap_or_else(|_| usage())
            }
            "--sim-slots" => {
                cfg.sim_slots = next(&mut i, &args).parse().unwrap_or_else(|_| usage())
            }
            "--out" => cfg.out_dir = Some(next(&mut i, &args).into()),
            "--no-csv" => cfg.out_dir = None,
            "--list" => {
                println!("{}", FIGURES.join("\n"));
                return;
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
        i += 1;
    }

    if figures.is_empty() {
        usage();
    }
    for f in &figures {
        if !FIGURES.contains(&f.as_str()) {
            eprintln!("unknown figure {f:?}");
            usage();
        }
    }

    println!(
        "# SPQ experiment harness — scale {}, seed {}, {} workers, {} queries/point, {} sim slots",
        cfg.scale, cfg.seed, cfg.workers, cfg.queries_per_point, cfg.sim_slots
    );
    if let Some(dir) = &cfg.out_dir {
        println!("# CSVs -> {}", dir.display());
    }
    println!();

    for figure in &figures {
        let t0 = std::time::Instant::now();
        let rendered = run_and_render(figure, &cfg);
        println!("{rendered}");
        println!("# {figure} finished in {:.1?}\n", t0.elapsed());
    }
}
