//! `chaos` — kill-and-recover harness for the remote backend.
//!
//! Spawns real `spq-worker` processes, connects a [`RemoteEngine`] over
//! them, then runs an aggressive fault schedule: each round SIGKILLs one
//! worker mid-stream, asserts every query stays byte-identical to the
//! local single-store engine, restarts the worker on its old address and
//! measures how long the tick-driven membership layer takes to re-admit
//! it. The report (`BENCH_PR7.json` in CI) records per-round recovery
//! wall-clock, ticks to re-admission, and the warm-vs-cold failover
//! split — warm failovers must dominate, because every shard is
//! replicated and a single death should never force a payload re-ship.
//!
//! Usage:
//!
//! ```text
//! chaos [--workers N] [--rounds N] [--queries N] [--scale F]
//!       [--out PATH] [--worker-bin PATH]
//! ```
//!
//! `--worker-bin` defaults to the `spq-worker` binary next to this
//! executable (both live in `target/release` after a workspace build).

use spq_bench::params::{scaled, DEFAULT_GRID_SYNTH, DEFAULT_SIZE_UN};
use spq_core::{
    MembershipConfig, QueryEngine, QueryExecutor, QueryRequest, RemoteEngine, SpqExecutor, SpqQuery,
};
use spq_data::{DatasetGenerator, QueryStream, StreamConfig, UniformGen};
use spq_spatial::Rect;
use std::io::{BufRead, BufReader};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

struct Config {
    workers: usize,
    rounds: usize,
    queries: usize,
    scale: f64,
    out: PathBuf,
    worker_bin: PathBuf,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            workers: 3,
            rounds: 3,
            queries: 16,
            scale: 0.005,
            out: PathBuf::from("BENCH_PR7.json"),
            worker_bin: default_worker_bin(),
        }
    }
}

/// The `spq-worker` binary sitting next to this executable.
fn default_worker_bin() -> PathBuf {
    std::env::current_exe()
        .ok()
        .and_then(|exe| Some(exe.parent()?.join("spq-worker")))
        .unwrap_or_else(|| PathBuf::from("spq-worker"))
}

fn parse_args() -> Config {
    let mut cfg = Config::default();
    let mut args = std::env::args().skip(1);
    fn value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
        args.next()
            .unwrap_or_else(|| die(&format!("{flag} needs a value")))
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => cfg.workers = parse(&value(&mut args, "--workers"), "--workers"),
            "--rounds" => cfg.rounds = parse(&value(&mut args, "--rounds"), "--rounds"),
            "--queries" => cfg.queries = parse(&value(&mut args, "--queries"), "--queries"),
            "--scale" => cfg.scale = parse(&value(&mut args, "--scale"), "--scale"),
            "--out" => cfg.out = PathBuf::from(value(&mut args, "--out")),
            "--worker-bin" => cfg.worker_bin = PathBuf::from(value(&mut args, "--worker-bin")),
            "--help" | "-h" => {
                println!(
                    "usage: chaos [--workers N] [--rounds N] [--queries N] [--scale F] \
                     [--out PATH] [--worker-bin PATH]"
                );
                std::process::exit(0);
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    if cfg.workers < 2 {
        die("--workers must be at least 2 (a lone worker has nowhere to fail over)");
    }
    cfg
}

fn parse<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse()
        .unwrap_or_else(|_| die(&format!("cannot parse {flag} value {s:?}")))
}

fn die(message: &str) -> ! {
    eprintln!("chaos: {message}");
    std::process::exit(2)
}

/// A spawned `spq-worker` child, killed on drop so an aborting run never
/// leaks worker processes.
struct Worker {
    child: Child,
    addr: String,
}

impl Worker {
    fn spawn(bin: &PathBuf, listen: &str) -> Result<Self, String> {
        let mut child = Command::new(bin)
            .args(["--listen", listen])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn {}: {e}", bin.display()))?;
        let stdout = child.stdout.take().expect("worker stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .map_err(|e| format!("read worker banner: {e}"))?;
        match line.trim().strip_prefix("spq-worker listening on ") {
            Some(addr) => Ok(Self {
                child,
                addr: addr.to_owned(),
            }),
            None => {
                let _ = child.kill();
                let _ = child.wait();
                Err(format!("unexpected worker banner: {line:?}"))
            }
        }
    }

    /// Restarts a worker on a fixed address, retrying briefly in case the
    /// OS has not released the killed predecessor's port yet.
    fn respawn(bin: &PathBuf, listen: &str) -> Self {
        let mut last = String::new();
        for _ in 0..50 {
            match Self::spawn(bin, listen) {
                Ok(worker) => return worker,
                Err(e) => last = e,
            }
            std::thread::sleep(Duration::from_millis(100));
        }
        die(&format!("cannot respawn spq-worker on {listen}: {last}"))
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Worker {
    fn drop(&mut self) {
        self.kill();
    }
}

struct RoundReport {
    victim: usize,
    queries: usize,
    retries: u64,
    warm_failovers: u64,
    cold_reprovisions: u64,
    provisions_during_outage: u64,
    recovery_ms: f64,
    ticks_to_readmit: u64,
}

fn main() {
    let cfg = parse_args();
    let size = scaled(DEFAULT_SIZE_UN, cfg.scale);
    eprintln!(
        "[chaos] {} workers, {} rounds x {} queries over {size} objects",
        cfg.workers, cfg.rounds, cfg.queries
    );

    let dataset = UniformGen.generate(size, 2017);
    let vocab_size = dataset.vocab_size.max(1);
    let (shared, _) = dataset.to_shared_splits(8);
    let bounds = Rect::unit();
    let cell = bounds.width().max(bounds.height()) / DEFAULT_GRID_SYNTH as f64;
    let defaults = StreamConfig::default();
    let queries: Vec<SpqQuery> = QueryStream::new(
        vocab_size,
        StreamConfig {
            radius_classes: [5.0, 10.0, 25.0]
                .iter()
                .map(|pct| cell * pct / 100.0)
                .collect(),
            seed: 2017 ^ 13,
            keywords_per_query: defaults.keywords_per_query.min(vocab_size),
            ..defaults
        },
    )
    .batch(cfg.queries);

    let executor = SpqExecutor::new(bounds).grid_size(DEFAULT_GRID_SYNTH);
    let local = QueryEngine::new(executor.clone(), shared.clone());
    let reference: Vec<_> = queries
        .iter()
        .map(|q| {
            let req = QueryRequest::new(q.clone());
            local.execute(&req).expect("local reference").results
        })
        .collect();

    let mut workers: Vec<Worker> = (0..cfg.workers)
        .map(|_| {
            Worker::spawn(&cfg.worker_bin, "127.0.0.1:0")
                .unwrap_or_else(|e| die(&format!("cannot start workers: {e}")))
        })
        .collect();
    let addrs: Vec<String> = workers.iter().map(|w| w.addr.clone()).collect();
    let membership = MembershipConfig::default();
    let build_start = Instant::now();
    let remote = RemoteEngine::connect_with(executor, shared, &addrs, membership)
        .unwrap_or_else(|e| die(&format!("cannot build remote engine: {e}")));
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "[chaos] provisioned {} shards x replication {} in {build_ms:.1}ms ({} provisions)",
        remote.num_shards(),
        membership.replication_factor,
        remote.provisions_sent()
    );

    let mut rounds: Vec<RoundReport> = Vec::with_capacity(cfg.rounds);
    for round in 0..cfg.rounds {
        let victim = round % cfg.workers;
        eprintln!(
            "[chaos] round {round}: SIGKILL worker {victim} ({})",
            addrs[victim]
        );
        workers[victim].kill();

        let retries0 = remote.retries();
        let warm0 = remote.warm_failovers();
        let cold0 = remote.cold_reprovisions();
        let prov0 = remote.provisions_sent();

        // The full stream against a cluster missing one worker: every
        // answer must still match the local engine byte for byte.
        for (q, expect) in queries.iter().zip(&reference) {
            let got = remote
                .execute(&QueryRequest::new(q.clone()))
                .unwrap_or_else(|e| die(&format!("query failed during outage: {e}")));
            if &got.results != expect {
                die(&format!(
                    "round {round}: results diverged from local engine after killing worker {victim}"
                ));
            }
        }

        // Restart the worker on its old address and tick the membership
        // layer until it is re-admitted and the layout is quiescent.
        let readmissions0 = remote.readmissions();
        let recover_start = Instant::now();
        workers[victim] = Worker::respawn(&cfg.worker_bin, &addrs[victim]);
        let mut ticks = 0u64;
        loop {
            ticks += 1;
            let report = remote.tick();
            if report.quiescent() && remote.readmissions() > readmissions0 {
                break;
            }
            if ticks > 600 {
                die(&format!(
                    "round {round}: worker {victim} not re-admitted after {ticks} ticks"
                ));
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        let recovery_ms = recover_start.elapsed().as_secs_f64() * 1e3;
        remote
            .check_replication()
            .unwrap_or_else(|e| die(&format!("replication invariant broken: {e}")));

        // The recovered cluster must answer the stream with zero retries.
        for (q, expect) in queries.iter().zip(&reference) {
            let got = remote
                .execute(&QueryRequest::new(q.clone()))
                .unwrap_or_else(|e| die(&format!("query failed after recovery: {e}")));
            if &got.results != expect {
                die(&format!("round {round}: post-recovery divergence"));
            }
            if got.stats.retries != 0 {
                die(&format!(
                    "round {round}: post-recovery query still retried {}x",
                    got.stats.retries
                ));
            }
        }

        let report = RoundReport {
            victim,
            queries: cfg.queries,
            retries: remote.retries() - retries0,
            warm_failovers: remote.warm_failovers() - warm0,
            cold_reprovisions: remote.cold_reprovisions() - cold0,
            provisions_during_outage: remote.provisions_sent() - prov0,
            recovery_ms,
            ticks_to_readmit: ticks,
        };
        eprintln!(
            "[chaos] round {round}: identical under fault; warm {} / cold {}, \
             re-admitted in {recovery_ms:.1}ms ({ticks} ticks)",
            report.warm_failovers, report.cold_reprovisions
        );
        rounds.push(report);
    }

    let warm_total: u64 = rounds.iter().map(|r| r.warm_failovers).sum();
    let cold_total: u64 = rounds.iter().map(|r| r.cold_reprovisions).sum();
    if warm_total == 0 {
        die("no warm failover observed across any round — replication is not warm");
    }

    let json = to_json(&cfg, size, build_ms, &rounds, &remote);
    std::fs::write(&cfg.out, &json)
        .unwrap_or_else(|e| die(&format!("cannot write {}: {e}", cfg.out.display())));
    eprintln!(
        "[chaos] OK: {} rounds, warm {warm_total} / cold {cold_total}, report in {}",
        rounds.len(),
        cfg.out.display()
    );
}

fn to_json(
    cfg: &Config,
    objects: usize,
    build_ms: f64,
    rounds: &[RoundReport],
    remote: &RemoteEngine,
) -> String {
    let mut out = String::from("{\n  \"bench\": \"spq-bench chaos\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"workers\": {}, \"rounds\": {}, \"queries\": {}, \"objects\": {}, \"replication_factor\": {} }},\n",
        cfg.workers,
        cfg.rounds,
        cfg.queries,
        objects,
        remote.membership_config().replication_factor
    ));
    // Reaching the report means every query under fault and after
    // recovery matched the local single-store engine byte for byte.
    out.push_str("  \"identical_to_local\": true,\n");
    out.push_str(&format!("  \"build_ms\": {build_ms:.3},\n"));
    out.push_str(&format!(
        "  \"totals\": {{ \"retries\": {}, \"warm_failovers\": {}, \"cold_reprovisions\": {}, \"readmissions\": {}, \"health_probes\": {}, \"rebalance_moves\": {}, \"provisions_sent\": {} }},\n",
        remote.retries(),
        remote.warm_failovers(),
        remote.cold_reprovisions(),
        remote.readmissions(),
        remote.health_probes(),
        remote.rebalance_moves(),
        remote.provisions_sent()
    ));
    out.push_str("  \"rounds\": [\n");
    for (i, r) in rounds.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"victim\": {}, \"queries\": {}, \"retries\": {}, \"warm_failovers\": {}, \"cold_reprovisions\": {}, \"provisions_during_outage\": {}, \"recovery_ms\": {:.3}, \"ticks_to_readmit\": {} }}{}\n",
            r.victim,
            r.queries,
            r.retries,
            r.warm_failovers,
            r.cold_reprovisions,
            r.provisions_during_outage,
            r.recovery_ms,
            r.ticks_to_readmit,
            if i + 1 < rounds.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
