//! The backend-matrix bench behind `spq-bench --backend` and the
//! `BENCH_PR5.json` document.
//!
//! Where the QPS harness compares serving *lifecycles* over one engine,
//! this bench compares execution *backends* through the typed facade: the
//! same query stream is served through [`SpqService`] built on each
//! requested [`Backend`] (`local`, `sharded:N`, `remote:N`), and every
//! response is asserted byte-identical to the plain single-store engine —
//! so the numbers compare pure backend overhead (scatter width, gather
//! wire traffic, per-shard planning, TCP framing on `remote:N`) on
//! provably equal answers. The `remote:N` rows additionally report frame
//! bytes per query and retries observed — the `BENCH_PR6.json` document
//! CI publishes from this bench.
//!
//! Three modes per backend, mirroring the serving modes of PR 3/PR 4 so
//! the trajectories stay comparable:
//!
//! | mode | facade call | local backend equivalent |
//! |---|---|---|
//! | `execute` | [`QueryExecutor::execute`] loop | `engine` (sequential) |
//! | `execute-batch` | [`QueryExecutor::execute_batch`] | `engine-batch` (keyword-index candidate pruning) |
//! | `serve` | [`QueryExecutor::serve_requests`] | `engine-serve` (inter-query concurrency) |
//!
//! On top of the per-mode QPS, the report aggregates the new per-query
//! [`spq_core::QueryStats`]: shards touched, gather wire bytes,
//! plan-cache hit rate — the observability surface this PR adds,
//! exercised end to end.

use crate::params::{scaled, DEFAULT_GRID_SYNTH, DEFAULT_SIZE_UN};
use crate::qps::{mode_stats, ModeStats};
use spq_core::{
    Backend, QueryEngine, QueryExecutor, QueryRequest, RankedObject, SpqExecutor, SpqService,
};
use spq_data::{
    Dataset, DatasetGenerator, IngestError, IngestOptions, QueryStream, StreamConfig, UniformGen,
};
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;
use std::path::PathBuf;
use std::time::Instant;

/// Where the benched dataset comes from.
#[derive(Debug, Clone)]
pub enum BackendSource {
    /// Generate the fig7-uniform synthetic dataset at this scale.
    Generated {
        /// Multiplier on the harness default dataset size.
        scale: f64,
    },
    /// Ingest an external TSV dump (the CI path: a synthesized
    /// 120k-object Flickr-shaped dump).
    Loaded {
        /// Path of the data-object dump.
        data_tsv: PathBuf,
        /// Path of the feature-object dump.
        features_tsv: PathBuf,
    },
}

/// Configuration of one backend-matrix run.
#[derive(Debug, Clone)]
pub struct BackendBenchConfig {
    /// Backends to measure, in order.
    pub backends: Vec<Backend>,
    /// Dataset source.
    pub source: BackendSource,
    /// RNG seed for the dataset and the query stream.
    pub seed: u64,
    /// Worker threads (serve concurrency; scatter width on sharded).
    pub workers: usize,
    /// Length of the measured query stream.
    pub queries: usize,
    /// Batch size for `execute-batch`.
    pub batch: usize,
    /// Grid cells per axis.
    pub grid: u32,
    /// Fraction of the stream served from the hotspot pool.
    pub hotspot_fraction: f64,
    /// Number of hotspot queries in the pool.
    pub hotspots: usize,
}

impl Default for BackendBenchConfig {
    fn default() -> Self {
        Self {
            backends: vec![Backend::Local, Backend::Sharded { shards: 4 }],
            source: BackendSource::Generated { scale: 0.02 },
            seed: 2017,
            workers: ClusterConfig::auto().workers,
            queries: 24,
            batch: 8,
            grid: DEFAULT_GRID_SYNTH,
            hotspot_fraction: 0.5,
            hotspots: 8,
        }
    }
}

/// Aggregated per-query [`spq_core::QueryStats`] over one backend's
/// `execute` pass.
#[derive(Debug, Clone, Copy)]
pub struct StatsSummary {
    /// Mean shards touched per query.
    pub mean_shards_touched: f64,
    /// Mean boundary-crossing bytes per query (gather wire bytes on
    /// sharded, in-process shuffle bytes on local).
    pub mean_shuffle_bytes: f64,
    /// Fraction of queries whose partition plan came from cache.
    pub plan_cache_hit_rate: f64,
    /// Mean TCP frame bytes per query (requests plus responses, all
    /// workers); `0` on in-process backends.
    pub mean_frame_bytes: f64,
    /// Mean retry-state-machine re-asks per query; `0` unless a worker
    /// failed mid-run.
    pub mean_retries: f64,
}

/// One backend × algorithm measurement.
#[derive(Debug, Clone)]
pub struct BackendAlgoReport {
    /// The algorithm measured.
    pub algorithm: spq_core::Algorithm,
    /// Per-mode stats: `execute`, `execute-batch`, `serve`.
    pub modes: Vec<ModeStats>,
    /// Aggregated per-query stats from the `execute` pass.
    pub stats: StatsSummary,
}

/// One backend's full measurement.
#[derive(Debug, Clone)]
pub struct BackendSection {
    /// The backend measured.
    pub backend: Backend,
    /// Mean wall-clock of one `SpqService::build` (store slicing +
    /// per-shard index builds), milliseconds — averaged over the three
    /// per-algorithm builds the matrix performs.
    pub build_ms: f64,
    /// Per-algorithm measurements, in `Algorithm::ALL` order.
    pub algorithms: Vec<BackendAlgoReport>,
}

/// The full backend-matrix report.
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// Workload id.
    pub id: &'static str,
    /// Total objects served.
    pub objects: usize,
    /// Per-backend sections, in configured order.
    pub backends: Vec<BackendSection>,
}

fn acquire_dataset(cfg: &BackendBenchConfig) -> Result<(Dataset, Rect, &'static str), IngestError> {
    match &cfg.source {
        BackendSource::Generated { scale } => {
            let size = scaled(DEFAULT_SIZE_UN, *scale);
            eprintln!("[backend-matrix] generating {size} objects");
            let dataset = UniformGen.generate(size, cfg.seed);
            Ok((dataset, Rect::unit(), "backend-matrix-uniform"))
        }
        BackendSource::Loaded {
            data_tsv,
            features_tsv,
        } => {
            eprintln!(
                "[backend-matrix] loading {} + {}",
                data_tsv.display(),
                features_tsv.display()
            );
            let loaded =
                spq_data::ingest::ingest_files(data_tsv, features_tsv, &IngestOptions::default())?;
            let bounds = loaded.dataset.bounds;
            Ok((loaded.dataset, bounds, "backend-matrix-tsv"))
        }
    }
}

fn stream_for(
    cfg: &BackendBenchConfig,
    dataset: &Dataset,
    bounds: Rect,
) -> Vec<spq_core::SpqQuery> {
    let cell = bounds.width().max(bounds.height()) / cfg.grid as f64;
    let vocab_size = dataset.vocab_size.max(1);
    let defaults = StreamConfig::default();
    let mut stream = QueryStream::new(
        vocab_size,
        StreamConfig {
            radius_classes: [5.0, 10.0, 25.0]
                .iter()
                .map(|pct| cell * pct / 100.0)
                .collect(),
            hotspot_fraction: cfg.hotspot_fraction,
            hotspots: cfg.hotspots,
            seed: cfg.seed ^ 13,
            keywords_per_query: defaults.keywords_per_query.min(vocab_size),
            ..defaults
        },
    );
    stream.batch(cfg.queries)
}

/// Runs the backend matrix: every configured backend serves the same
/// stream through the typed facade; every mode's results are asserted
/// byte-identical to the plain single-store engine.
///
/// # Panics
///
/// Panics if any backend/mode diverges from the single-store reference —
/// the CI gate this bench exists for.
pub fn run_backend_bench(cfg: &BackendBenchConfig) -> Result<BackendReport, IngestError> {
    assert!(!cfg.backends.is_empty(), "need at least one backend");
    let (dataset, bounds, id) = acquire_dataset(cfg)?;
    let queries = stream_for(cfg, &dataset, bounds);
    let requests: Vec<QueryRequest> = queries.iter().cloned().map(QueryRequest::new).collect();
    let (shared, _) = dataset.to_shared_splits(8);

    // The byte-identity reference — the plain single-store engine through
    // the typed API — depends only on the algorithm, so it is computed
    // once per algorithm and shared by every backend section.
    let prepared: Vec<(spq_core::Algorithm, SpqExecutor, Vec<Vec<RankedObject>>)> =
        spq_core::Algorithm::ALL
            .iter()
            .map(|&algorithm| {
                let exec = SpqExecutor::new(bounds)
                    .algorithm(algorithm)
                    .grid_size(cfg.grid)
                    .cluster(ClusterConfig::with_workers(cfg.workers));
                let reference_engine = QueryEngine::new(exec.clone(), shared.clone());
                let reference: Vec<Vec<RankedObject>> = requests
                    .iter()
                    .map(|r| reference_engine.execute(r).expect("reference job").results)
                    .collect();
                (algorithm, exec, reference)
            })
            .collect();

    let backends = cfg
        .backends
        .iter()
        .map(|&backend| {
            let mut build_ms_total = 0.0f64;
            let algorithms = prepared
                .iter()
                .map(|(algorithm, exec, reference)| {
                    let algorithm = *algorithm;
                    eprintln!(
                        "[{id}] {backend} / {algorithm}: {} requests x 3 modes",
                        requests.len()
                    );

                    let t0 = Instant::now();
                    let service = SpqService::build(exec.clone(), shared.clone(), backend)
                        .expect("service build");
                    build_ms_total += t0.elapsed().as_secs_f64() * 1e3;

                    // -- execute: sequential typed requests ---------------
                    let mut latencies = Vec::with_capacity(requests.len());
                    let mut shards_touched = 0u64;
                    let mut shuffle_bytes = 0u64;
                    let mut plan_hits = 0u64;
                    let mut retries = 0u64;
                    let frame_bytes_before = service.remote_traffic_bytes().unwrap_or(0);
                    let wall = Instant::now();
                    for (request, expect) in requests.iter().zip(reference.iter()) {
                        let t0 = Instant::now();
                        let response = service.execute(request).expect("execute");
                        latencies.push(t0.elapsed());
                        assert_eq!(
                            &response.results, expect,
                            "{backend}/{algorithm}: execute diverged"
                        );
                        shards_touched += response.stats.shards_touched as u64;
                        shuffle_bytes += response.stats.shuffle_bytes;
                        plan_hits += response.stats.plan_cache_hit as u64;
                        retries += response.stats.retries;
                    }
                    let execute = mode_stats("execute", latencies, wall.elapsed());
                    let frame_bytes = service
                        .remote_traffic_bytes()
                        .unwrap_or(0)
                        .saturating_sub(frame_bytes_before);
                    let n = requests.len().max(1) as f64;
                    let stats = StatsSummary {
                        mean_shards_touched: shards_touched as f64 / n,
                        mean_shuffle_bytes: shuffle_bytes as f64 / n,
                        plan_cache_hit_rate: plan_hits as f64 / n,
                        mean_frame_bytes: frame_bytes as f64 / n,
                        mean_retries: retries as f64 / n,
                    };

                    // -- execute-batch: the engine-batch path -------------
                    let mut latencies = Vec::with_capacity(requests.len());
                    let wall = Instant::now();
                    for (chunk, expect) in requests
                        .chunks(cfg.batch.max(1))
                        .zip(reference.chunks(cfg.batch.max(1)))
                    {
                        let t0 = Instant::now();
                        let responses = service.execute_batch(chunk).expect("batch");
                        let amortized = t0.elapsed() / chunk.len() as u32;
                        for (response, expect) in responses.iter().zip(expect) {
                            assert_eq!(
                                &response.results, expect,
                                "{backend}/{algorithm}: batch diverged"
                            );
                            latencies.push(amortized);
                        }
                    }
                    let execute_batch = mode_stats("execute-batch", latencies, wall.elapsed());

                    // -- serve: inter-query concurrency -------------------
                    let wall = Instant::now();
                    let responses = service
                        .serve_requests(&requests, cfg.workers.max(1))
                        .expect("serve");
                    let serve_wall = wall.elapsed();
                    let latencies = responses
                        .iter()
                        .zip(reference.iter())
                        .map(|(response, expect)| {
                            assert_eq!(
                                &response.results, expect,
                                "{backend}/{algorithm}: serve diverged"
                            );
                            std::time::Duration::from_micros(response.stats.wall_micros)
                        })
                        .collect();
                    let serve = mode_stats("serve", latencies, serve_wall);

                    BackendAlgoReport {
                        algorithm,
                        modes: vec![execute, execute_batch, serve],
                        stats,
                    }
                })
                .collect();
            BackendSection {
                backend,
                build_ms: build_ms_total / prepared.len().max(1) as f64,
                algorithms,
            }
        })
        .collect();

    Ok(BackendReport {
        id,
        objects: dataset.total(),
        backends,
    })
}

/// Renders the report as the `BENCH_PR5.json` document.
pub fn backend_to_json(cfg: &BackendBenchConfig, report: &BackendReport) -> String {
    let source = match &cfg.source {
        BackendSource::Generated { scale } => format!("{{ \"generated_scale\": {scale} }}"),
        BackendSource::Loaded {
            data_tsv,
            features_tsv,
        } => format!(
            "{{ \"data_tsv\": {:?}, \"features_tsv\": {:?} }}",
            data_tsv.display().to_string(),
            features_tsv.display().to_string()
        ),
    };
    let mut out = String::from("{\n  \"bench\": \"spq-bench backends\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"source\": {source}, \"seed\": {}, \"workers\": {}, \"queries\": {}, \"batch\": {}, \"grid\": {} }},\n",
        cfg.seed, cfg.workers, cfg.queries, cfg.batch, cfg.grid
    ));
    // Reaching the report at all means every backend/mode matched the
    // single-store reference byte for byte.
    out.push_str("  \"identical_to_single_store\": true,\n");
    out.push_str(&format!(
        "  \"workload\": {{ \"id\": \"{}\", \"objects\": {} }},\n  \"backends\": [\n",
        report.id, report.objects
    ));
    for (bi, section) in report.backends.iter().enumerate() {
        out.push_str(&format!(
            "    {{\n      \"backend\": \"{}\",\n      \"build_ms\": {:.3},\n      \"algorithms\": [\n",
            section.backend, section.build_ms
        ));
        for (ai, a) in section.algorithms.iter().enumerate() {
            out.push_str(&format!(
                "        {{\n          \"name\": \"{}\",\n          \"modes\": [\n",
                a.algorithm.name()
            ));
            for (mi, m) in a.modes.iter().enumerate() {
                out.push_str(&format!(
                    "            {{ \"id\": \"{}\", \"qps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"wall_ms\": {:.3} }}{}\n",
                    m.id,
                    m.qps,
                    m.p50_ms,
                    m.p99_ms,
                    m.wall_ms,
                    if mi + 1 < a.modes.len() { "," } else { "" }
                ));
            }
            out.push_str(&format!(
                "          ],\n          \"stats\": {{ \"mean_shards_touched\": {:.2}, \"mean_shuffle_bytes\": {:.1}, \"plan_cache_hit_rate\": {:.3}, \"mean_frame_bytes\": {:.1}, \"mean_retries\": {:.3} }}\n        }}{}\n",
                a.stats.mean_shards_touched,
                a.stats.mean_shuffle_bytes,
                a.stats.plan_cache_hit_rate,
                a.stats.mean_frame_bytes,
                a.stats.mean_retries,
                if ai + 1 < section.algorithms.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "      ]\n    }}{}\n",
            if bi + 1 < report.backends.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_backend_matrix_measures_and_renders() {
        let cfg = BackendBenchConfig {
            backends: vec![
                Backend::Local,
                Backend::Sharded { shards: 2 },
                Backend::Sharded { shards: 5 },
                Backend::Remote { workers: 2 },
            ],
            source: BackendSource::Generated { scale: 1e-9 }, // 1k-object floor
            queries: 6,
            batch: 3,
            workers: 2,
            ..BackendBenchConfig::default()
        };
        // run_backend_bench asserts byte-identity of every backend and
        // mode against the single-store engine, so completing at all is
        // the correctness part.
        let report = run_backend_bench(&cfg).unwrap();
        assert_eq!(report.backends.len(), 4);
        for section in &report.backends {
            assert_eq!(section.algorithms.len(), 3);
            for a in &section.algorithms {
                assert_eq!(a.modes.len(), 3);
                for m in &a.modes {
                    assert!(m.qps > 0.0, "{}: {} qps", section.backend, m.id);
                }
                match section.backend {
                    Backend::Local => {
                        assert_eq!(a.stats.mean_shards_touched, 1.0);
                        assert_eq!(a.stats.mean_frame_bytes, 0.0);
                    }
                    Backend::Sharded { shards } => {
                        assert!(a.stats.mean_shards_touched <= shards as f64);
                        assert!(a.stats.mean_shards_touched >= 1.0);
                        assert_eq!(a.stats.mean_frame_bytes, 0.0);
                    }
                    Backend::Remote { workers } => {
                        assert!(a.stats.mean_shards_touched <= workers as f64);
                        // Every query crossed the wire in frames; nobody
                        // died, so no retries.
                        assert!(a.stats.mean_frame_bytes > 0.0);
                        assert_eq!(a.stats.mean_retries, 0.0);
                    }
                }
            }
        }
        let json = backend_to_json(&cfg, &report);
        assert!(json.contains("\"identical_to_single_store\": true"));
        assert!(json.contains("\"backend\": \"local\""));
        assert!(json.contains("\"backend\": \"sharded:2\""));
        assert!(json.contains("\"backend\": \"remote:2\""));
        assert!(json.contains("\"execute-batch\""));
        assert!(json.contains("\"mean_shards_touched\""));
        assert!(json.contains("\"mean_frame_bytes\""));
        assert!(json.contains("\"mean_retries\""));
    }

    #[test]
    fn loaded_source_benches_a_dump() {
        let dir = std::env::temp_dir();
        let d = dir.join(format!("spq-backend-bench-{}-d.tsv", std::process::id()));
        let f = dir.join(format!("spq-backend-bench-{}-f.tsv", std::process::id()));
        spq_data::ingest::synthesize_dump(
            &spq_data::ingest::DumpConfig {
                objects: 1000,
                seed: 5,
            },
            &d,
            &f,
        )
        .unwrap();
        let cfg = BackendBenchConfig {
            backends: vec![Backend::Sharded { shards: 3 }],
            source: BackendSource::Loaded {
                data_tsv: d.clone(),
                features_tsv: f.clone(),
            },
            queries: 4,
            batch: 2,
            workers: 1,
            ..BackendBenchConfig::default()
        };
        let report = run_backend_bench(&cfg).unwrap();
        assert_eq!(report.id, "backend-matrix-tsv");
        assert_eq!(report.objects, 1000);
        let json = backend_to_json(&cfg, &report);
        assert!(json.contains("\"data_tsv\""));
        for p in [&d, &f] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn missing_dump_is_an_error() {
        let cfg = BackendBenchConfig {
            source: BackendSource::Loaded {
                data_tsv: PathBuf::from("/nonexistent/spq-d.tsv"),
                features_tsv: PathBuf::from("/nonexistent/spq-f.tsv"),
            },
            ..BackendBenchConfig::default()
        };
        assert!(run_backend_bench(&cfg).is_err());
    }
}
