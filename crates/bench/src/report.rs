//! Panel rendering: aligned console tables and CSV files.

use crate::{BenchConfig, Panel};
use std::fmt::Write as _;
use std::io::Write as _;
use std::time::Duration;

fn fmt_secs(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 100.0 {
        format!("{s:.0}s")
    } else if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1000.0)
    }
}

/// Renders a panel as an aligned text table (the harness' analogue of one
/// chart of the paper).
pub fn render(panel: &Panel) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}", panel.title);
    let mut header = format!("{:<12}", panel.x_label);
    for a in &panel.algorithms {
        let _ = write!(header, "{:>12}{:>12}", format!("{a}"), "(sim)");
    }
    let _ = writeln!(out, "{header}{:>14}{:>14}", "feat.exam.", "shuffle");
    for row in &panel.rows {
        let mut line = format!("{:<12}", row.x);
        for cell in &row.cells {
            let _ = write!(
                line,
                "{:>12}{:>12}",
                fmt_secs(cell.measured),
                fmt_secs(cell.simulated)
            );
        }
        // Diagnostics for the *last* algorithm column (typically eSPQsco),
        // showing how little work early termination leaves.
        if let Some(last) = row.cells.last() {
            let _ = write!(
                line,
                "{:>14}{:>14}",
                last.features_examined, last.shuffle_records
            );
        }
        let _ = writeln!(out, "{line}");
    }
    out
}

/// Writes a panel as CSV (one row per x-value × algorithm).
pub fn write_csv(panel: &Panel, cfg: &BenchConfig) -> std::io::Result<()> {
    let Some(dir) = &cfg.out_dir else {
        return Ok(());
    };
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{}.csv", panel.id));
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(
        f,
        "panel,x,algorithm,measured_ms,simulated_ms,features_examined,shuffle_records,reduce_skew,results"
    )?;
    for row in &panel.rows {
        for (algo, cell) in panel.algorithms.iter().zip(&row.cells) {
            writeln!(
                f,
                "{},{},{},{:.3},{:.3},{},{},{:.3},{}",
                panel.id,
                row.x,
                algo,
                cell.measured.as_secs_f64() * 1000.0,
                cell.simulated.as_secs_f64() * 1000.0,
                cell.features_examined,
                cell.shuffle_records,
                cell.reduce_skew,
                cell.results
            )?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Measurement, PanelRow};
    use spq_core::Algorithm;

    fn panel() -> Panel {
        Panel {
            id: "test".to_owned(),
            title: "Test panel".to_owned(),
            x_label: "x".to_owned(),
            algorithms: vec![Algorithm::PSpq, Algorithm::ESpqSco],
            rows: vec![PanelRow {
                x: "10".to_owned(),
                cells: vec![
                    Measurement {
                        measured: Duration::from_millis(1500),
                        ..Default::default()
                    },
                    Measurement {
                        measured: Duration::from_micros(800),
                        features_examined: 42,
                        ..Default::default()
                    },
                ],
            }],
        }
    }

    #[test]
    fn render_contains_all_columns() {
        let s = render(&panel());
        assert!(s.contains("Test panel"));
        assert!(s.contains("pSPQ"));
        assert!(s.contains("eSPQsco"));
        assert!(s.contains("1.50s"));
        assert!(s.contains("0.8ms"));
        assert!(s.contains("42"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_secs(Duration::from_millis(2)), "2.0ms");
        assert_eq!(fmt_secs(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_secs(Duration::from_secs(250)), "250s");
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join(format!("spq-bench-csv-{}", std::process::id()));
        let cfg = BenchConfig {
            out_dir: Some(dir.clone()),
            ..Default::default()
        };
        write_csv(&panel(), &cfg).unwrap();
        let content = std::fs::read_to_string(dir.join("test.csv")).unwrap();
        assert!(content.lines().count() == 3); // header + 2 algorithm rows
        assert!(content.contains("pSPQ"));
        assert!(content.contains("1500.000"));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn csv_skipped_without_out_dir() {
        let cfg = BenchConfig {
            out_dir: None,
            ..Default::default()
        };
        write_csv(&panel(), &cfg).unwrap(); // no-op, must not error
    }
}
