//! The pre-zero-copy record layout, fossilised for trajectory benchmarks.
//!
//! Before the shared-dataset refactor, the map phase shipped every record
//! as an *owned payload*: data objects as `(id, location)` pairs, feature
//! objects as `(id, location, keywords)` with a freshly cloned keyword
//! box per Lemma-1 routed copy — and the reducer re-sorted its whole
//! input with a comparison sort over the composite key. These tasks
//! reproduce that exact behaviour (single sort run, full-range sort,
//! cloned payloads, reduce-side re-scoring where the old code re-scored)
//! so `spq-bench` can measure the current handle-based pipeline against
//! the baseline it replaced, on the same machine, in the same run.
//!
//! Nothing here is part of the production path; `spq-core` no longer
//! contains a per-record `keywords.clone()` anywhere.

use spq_core::algo::espq_len::LenKey;
use spq_core::algo::espq_sco::ScoKey;
use spq_core::algo::pspq::PSpqKey;
use spq_core::partitioning::{
    route_data, route_feature_with_pruning, COUNTER_MAP_DATA, COUNTER_MAP_DUPLICATES,
    COUNTER_MAP_FEATURES, COUNTER_MAP_PRUNED, COUNTER_REDUCE_DISTANCE_CHECKS,
    COUNTER_REDUCE_FEATURES_EXAMINED,
};
use spq_core::{ObjectId, RankedObject, SpqObject, SpqQuery, TopKList};
use spq_mapreduce::{GroupValues, MapContext, MapReduceTask, ReduceContext};
use spq_spatial::{Point, SpacePartition};
use spq_text::{KeywordSet, Score, Term};
use std::cmp::Ordering;

/// Counter: heap bytes carried by cloned keyword payloads through the
/// shuffle (the baseline's hidden cost; exactly 0 for the handle layout).
pub const COUNTER_SHUFFLE_HEAP_BYTES: &str = "shuffle.heap_bytes";

/// The old owned shuffle payload of pSPQ and eSPQlen.
#[derive(Debug, Clone)]
pub enum ClonedPayload {
    /// A data object (id, location).
    Data(ObjectId, Point),
    /// A feature object (id, location, cloned keywords).
    Feature(ObjectId, Point, KeywordSet),
}

/// The old eSPQsco payload (score in the key, location in the value).
#[derive(Debug, Clone, Copy)]
pub enum ClonedSlimPayload {
    /// A data object (id, location).
    Data(ObjectId, Point),
    /// A feature object (location only).
    Feature(Point),
}

fn keyword_heap_bytes(kw: &KeywordSet) -> u64 {
    (kw.len() * std::mem::size_of::<Term>()) as u64
}

/// Baseline pSPQ: cloned payloads, reduce-side scoring, full reducer sort.
#[derive(Debug)]
pub struct BaselinePSpqTask<'a> {
    grid: &'a SpacePartition,
    query: &'a SpqQuery,
}

impl<'a> BaselinePSpqTask<'a> {
    /// Creates the baseline task.
    pub fn new(grid: &'a SpacePartition, query: &'a SpqQuery) -> Self {
        Self { grid, query }
    }
}

impl MapReduceTask for BaselinePSpqTask<'_> {
    type Input = SpqObject;
    type Key = PSpqKey;
    type Value = ClonedPayload;
    type Output = RankedObject;

    fn num_reducers(&self) -> usize {
        self.grid.num_cells()
    }

    fn map(&self, record: &SpqObject, ctx: &mut MapContext<'_, Self>) {
        match record {
            SpqObject::Data(o) => {
                ctx.counters().inc(COUNTER_MAP_DATA);
                ctx.emit(
                    self,
                    PSpqKey {
                        cell: route_data(self.grid, &o.location).0,
                        tag: 0,
                    },
                    ClonedPayload::Data(o.id, o.location),
                )
            }
            SpqObject::Feature(f) => {
                let mut cells = Vec::new();
                if route_feature_with_pruning(self.grid, self.query, f, true, |c| cells.push(c)) {
                    ctx.counters().inc(COUNTER_MAP_FEATURES);
                    ctx.counters()
                        .add(COUNTER_MAP_DUPLICATES, cells.len() as u64 - 1);
                    for c in cells {
                        ctx.counters()
                            .add(COUNTER_SHUFFLE_HEAP_BYTES, keyword_heap_bytes(&f.keywords));
                        ctx.emit(
                            self,
                            PSpqKey { cell: c.0, tag: 1 },
                            // The cost being measured: one keyword clone
                            // per routed copy.
                            ClonedPayload::Feature(f.id, f.location, f.keywords.clone()),
                        );
                    }
                } else {
                    ctx.counters().inc(COUNTER_MAP_PRUNED);
                }
            }
        }
    }

    fn partition(&self, key: &PSpqKey) -> usize {
        key.cell as usize
    }

    fn sort_cmp(&self, a: &PSpqKey, b: &PSpqKey) -> Ordering {
        a.cell.cmp(&b.cell).then(a.tag.cmp(&b.tag))
    }

    fn group_eq(&self, a: &PSpqKey, b: &PSpqKey) -> bool {
        a.cell == b.cell
    }

    fn reduce(
        &self,
        _group: &PSpqKey,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, RankedObject>,
    ) {
        let r_sq = self.query.radius * self.query.radius;
        let mut objects: Vec<(u64, Point)> = Vec::new();
        let mut scores: Vec<Score> = Vec::new();
        let mut topk = TopKList::new(self.query.k);
        let mut features_examined = 0u64;
        let mut distance_checks = 0u64;
        for (_key, value) in values.by_ref() {
            match value {
                ClonedPayload::Data(id, location) => {
                    objects.push((id, location));
                    scores.push(Score::ZERO);
                }
                ClonedPayload::Feature(_, f_loc, f_kw) => {
                    features_examined += 1;
                    // Re-scored per routed copy — the old behaviour.
                    // (Tie handling matches the live task: w == τ is
                    // admitted so both sides produce the canonical top-k
                    // and the byte-identity assertion stays meaningful.)
                    let w = self.query.score(&f_kw);
                    if !w.is_zero() && w >= topk.tau() {
                        distance_checks += objects.len() as u64;
                        for (i, &(id, location)) in objects.iter().enumerate() {
                            if location.dist_sq(&f_loc) <= r_sq && w > scores[i] {
                                scores[i] = w;
                                topk.update(id, location, w);
                            }
                        }
                    }
                }
            }
        }
        ctx.counters()
            .add(COUNTER_REDUCE_FEATURES_EXAMINED, features_examined);
        ctx.counters()
            .add(COUNTER_REDUCE_DISTANCE_CHECKS, distance_checks);
        for entry in topk.into_vec() {
            ctx.emit(entry);
        }
    }
}

/// Baseline eSPQlen: cloned payloads, reduce-side scoring, full sort.
#[derive(Debug)]
pub struct BaselineESpqLenTask<'a> {
    grid: &'a SpacePartition,
    query: &'a SpqQuery,
}

impl<'a> BaselineESpqLenTask<'a> {
    /// Creates the baseline task.
    pub fn new(grid: &'a SpacePartition, query: &'a SpqQuery) -> Self {
        Self { grid, query }
    }
}

impl MapReduceTask for BaselineESpqLenTask<'_> {
    type Input = SpqObject;
    type Key = LenKey;
    type Value = ClonedPayload;
    type Output = RankedObject;

    fn num_reducers(&self) -> usize {
        self.grid.num_cells()
    }

    fn map(&self, record: &SpqObject, ctx: &mut MapContext<'_, Self>) {
        match record {
            SpqObject::Data(o) => {
                ctx.counters().inc(COUNTER_MAP_DATA);
                ctx.emit(
                    self,
                    LenKey {
                        cell: route_data(self.grid, &o.location).0,
                        len: 0,
                    },
                    ClonedPayload::Data(o.id, o.location),
                )
            }
            SpqObject::Feature(f) => {
                let len = f.keywords.len() as u32;
                let mut cells = Vec::new();
                if route_feature_with_pruning(self.grid, self.query, f, true, |c| cells.push(c)) {
                    ctx.counters().inc(COUNTER_MAP_FEATURES);
                    ctx.counters()
                        .add(COUNTER_MAP_DUPLICATES, cells.len() as u64 - 1);
                    for c in cells {
                        ctx.counters()
                            .add(COUNTER_SHUFFLE_HEAP_BYTES, keyword_heap_bytes(&f.keywords));
                        ctx.emit(
                            self,
                            LenKey { cell: c.0, len },
                            ClonedPayload::Feature(f.id, f.location, f.keywords.clone()),
                        );
                    }
                } else {
                    ctx.counters().inc(COUNTER_MAP_PRUNED);
                }
            }
        }
    }

    fn partition(&self, key: &LenKey) -> usize {
        key.cell as usize
    }

    fn sort_cmp(&self, a: &LenKey, b: &LenKey) -> Ordering {
        a.cell.cmp(&b.cell).then(a.len.cmp(&b.len))
    }

    fn group_eq(&self, a: &LenKey, b: &LenKey) -> bool {
        a.cell == b.cell
    }

    fn reduce(
        &self,
        _group: &LenKey,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, RankedObject>,
    ) {
        let r_sq = self.query.radius * self.query.radius;
        let mut objects: Vec<(u64, Point)> = Vec::new();
        let mut scores: Vec<Score> = Vec::new();
        let mut topk = TopKList::new(self.query.k);
        for (key, value) in values.by_ref() {
            match value {
                ClonedPayload::Data(id, location) => {
                    objects.push((id, location));
                    scores.push(Score::ZERO);
                }
                ClonedPayload::Feature(_, f_loc, f_kw) => {
                    if objects.is_empty() {
                        break;
                    }
                    // Termination and tie handling match the live task
                    // (canonical top-k; see espq_len.rs).
                    let bound = self.query.upper_bound(key.len as usize);
                    if topk.tau() > bound {
                        break;
                    }
                    let w = self.query.score(&f_kw);
                    if !w.is_zero() && w >= topk.tau() {
                        for (i, &(id, location)) in objects.iter().enumerate() {
                            if location.dist_sq(&f_loc) <= r_sq && w > scores[i] {
                                scores[i] = w;
                                topk.update(id, location, w);
                            }
                        }
                    }
                }
            }
        }
        for entry in topk.into_vec() {
            ctx.emit(entry);
        }
    }
}

/// Baseline eSPQsco: per-copy map-side scoring, `Point`-carrying payload,
/// full reducer sort.
#[derive(Debug)]
pub struct BaselineESpqScoTask<'a> {
    grid: &'a SpacePartition,
    query: &'a SpqQuery,
}

impl<'a> BaselineESpqScoTask<'a> {
    /// Creates the baseline task.
    pub fn new(grid: &'a SpacePartition, query: &'a SpqQuery) -> Self {
        Self { grid, query }
    }
}

impl MapReduceTask for BaselineESpqScoTask<'_> {
    type Input = SpqObject;
    type Key = ScoKey;
    type Value = ClonedSlimPayload;
    type Output = RankedObject;

    fn num_reducers(&self) -> usize {
        self.grid.num_cells()
    }

    fn map(&self, record: &SpqObject, ctx: &mut MapContext<'_, Self>) {
        match record {
            SpqObject::Data(o) => {
                ctx.counters().inc(COUNTER_MAP_DATA);
                ctx.emit(
                    self,
                    ScoKey {
                        cell: route_data(self.grid, &o.location).0,
                        score: Score::DATA_SENTINEL,
                    },
                    ClonedSlimPayload::Data(o.id, o.location),
                )
            }
            SpqObject::Feature(f) => {
                let mut cells = Vec::new();
                if route_feature_with_pruning(self.grid, self.query, f, true, |c| cells.push(c)) {
                    ctx.counters().inc(COUNTER_MAP_FEATURES);
                    ctx.counters()
                        .add(COUNTER_MAP_DUPLICATES, cells.len() as u64 - 1);
                    let score = self.query.score(&f.keywords);
                    for c in cells {
                        ctx.emit(
                            self,
                            ScoKey { cell: c.0, score },
                            ClonedSlimPayload::Feature(f.location),
                        );
                    }
                } else {
                    ctx.counters().inc(COUNTER_MAP_PRUNED);
                }
            }
        }
    }

    fn partition(&self, key: &ScoKey) -> usize {
        key.cell as usize
    }

    fn sort_cmp(&self, a: &ScoKey, b: &ScoKey) -> Ordering {
        a.cell.cmp(&b.cell).then(b.score.cmp(&a.score))
    }

    fn group_eq(&self, a: &ScoKey, b: &ScoKey) -> bool {
        a.cell == b.cell
    }

    fn reduce(
        &self,
        _group: &ScoKey,
        values: &mut GroupValues<'_, Self>,
        ctx: &mut ReduceContext<'_, RankedObject>,
    ) {
        let r_sq = self.query.radius * self.query.radius;
        let k = self.query.k;
        let mut objects: Vec<(u64, Point)> = Vec::new();
        let mut reported: Vec<bool> = Vec::new();
        let mut emitted = 0usize;
        let mut run_score: Option<Score> = None;
        let mut run_buf: Vec<RankedObject> = Vec::new();

        let flush = |run_buf: &mut Vec<RankedObject>,
                     emitted: &mut usize,
                     ctx: &mut ReduceContext<'_, RankedObject>| {
            run_buf.sort_by_key(|e| e.object);
            for entry in run_buf.drain(..) {
                if *emitted == k {
                    break;
                }
                ctx.emit(entry);
                *emitted += 1;
            }
        };

        for (key, value) in values.by_ref() {
            match value {
                ClonedSlimPayload::Data(id, location) => {
                    objects.push((id, location));
                    reported.push(false);
                }
                ClonedSlimPayload::Feature(f_loc) => {
                    if objects.is_empty() {
                        return;
                    }
                    let w = key.score;
                    if w.is_zero() {
                        break;
                    }
                    if run_score != Some(w) {
                        flush(&mut run_buf, &mut emitted, ctx);
                        if emitted == k {
                            return;
                        }
                        run_score = Some(w);
                    }
                    for (i, &(id, location)) in objects.iter().enumerate() {
                        if !reported[i] && location.dist_sq(&f_loc) <= r_sq {
                            reported[i] = true;
                            run_buf.push(RankedObject::new(id, location, w));
                        }
                    }
                    if run_buf.len() + emitted == objects.len() {
                        break;
                    }
                }
            }
        }
        flush(&mut run_buf, &mut emitted, ctx);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_core::centralized::brute_force;
    use spq_core::merge::merge_top_k;
    use spq_data::{DatasetGenerator, UniformGen};
    use spq_mapreduce::{ClusterConfig, JobRunner};
    use spq_spatial::{Grid, Rect};
    use spq_text::KeywordSet;

    /// The baseline tasks must be a faithful oracle of the old pipeline:
    /// same results as the brute force (and hence as the new handle path).
    #[test]
    fn baselines_agree_with_brute_force() {
        let dataset = UniformGen.generate(2_000, 7);
        let grid: SpacePartition = Grid::square(Rect::unit(), 8).into();
        let query = SpqQuery::new(10, 0.02, KeywordSet::from_ids([0, 1, 2]));
        let expect = brute_force(&dataset.data, &dataset.features, &query);
        let splits = dataset.to_splits(4);
        let runner = JobRunner::new(ClusterConfig::with_workers(2));

        let p = runner
            .run(&BaselinePSpqTask::new(&grid, &query), &splits)
            .unwrap();
        assert!(p.stats.counters.get(COUNTER_SHUFFLE_HEAP_BYTES) > 0);
        assert_eq!(merge_top_k(p.into_flat(), query.k), expect);

        let l = runner
            .run(&BaselineESpqLenTask::new(&grid, &query), &splits)
            .unwrap();
        assert_eq!(merge_top_k(l.into_flat(), query.k), expect);

        let s = runner
            .run(&BaselineESpqScoTask::new(&grid, &query), &splits)
            .unwrap();
        assert_eq!(merge_top_k(s.into_flat(), query.k), expect);
    }
}
