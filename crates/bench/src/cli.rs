//! Argument parsing for the `spq-bench` binary, split out of `main` so
//! the parser is unit-testable.
//!
//! Two hardening rules the old inline parser lacked:
//!
//! * Unknown flags are **errors** (exit with the usage string), never
//!   silently ignored.
//! * A value-taking flag refuses a following token that looks like a
//!   flag, so `--out --whoops` reports a missing value instead of
//!   silently swallowing `--whoops` as the output path (and then
//!   ignoring whatever it was meant to do).

use crate::ingest_bench::IngestBenchConfig;
use crate::matrix::{MatrixConfig, DEFAULT_THRESHOLD};
use crate::qps::QpsConfig;
use crate::trajectory::TrajectoryConfig;

/// The usage string printed on `--help` and on parse errors.
pub const USAGE: &str = "usage: spq-bench [matrix|compare] ...\n\
spq-bench matrix [--filter GLOB] [--backend local|sharded:N|remote:N]... \
     [--scale F] [--seed N] [--workers N] [--queries N] [--batch N] \
     [--out FILE]\n\
    Runs the declarative benchmark matrix (corpus x algorithm x backend x \
mode; ids like uniform-120k/pSPQ/remote:4/execute-batch, selected by a \
'*'-glob over full ids) and writes the versioned record document \
(default BENCH_MATRIX.json): bootstrap 95% CIs, Tukey outlier counts, \
byte-identity attestation per record.\n\
spq-bench compare BASELINE.json CANDIDATE.json [--threshold F]\n\
    Classifies each shared benchmark id as improved/regressed/unchanged \
by CI-interval overlap plus a relative mean threshold (default 0.05), \
prints a markdown table, and exits 1 if anything regressed (2 on \
unreadable documents) — the CI regression gate.\n\
spq-bench [--scale F] [--seed N] [--workers N] [--repeats N] \
     [--queries N] [--grid N] [--out FILE] \
     [--qps-queries N] [--qps-batch N] [--qps-out FILE] \
     [--data-tsv FILE --features-tsv FILE] [--ingest-out FILE] \
     [--ingest-queries N] [--ingest-batch N] [--synthesize N] \
     [--backend local|sharded|sharded:N|remote:N]... [--backend-out FILE] \
     [--backend-queries N] [--backend-batch N]\n\
With --data-tsv/--features-tsv the binary benches the loaded dump \
(writing --ingest-out, default BENCH_INGEST.json) instead of the \
generated-dataset trajectories; --synthesize N first writes a \
deterministic N-object dump to those two paths.\n\
With --backend (repeatable) the binary instead benches the typed-facade \
backend matrix over the dump (or a generated dataset when no TSV paths \
are given), asserting byte-identity across backends and writing \
--backend-out (default BENCH_PR5.json). remote:N serves through N TCP \
worker processes — self-hosted unless SPQ_REMOTE_WORKERS names N \
host:port addresses — and reports frame bytes and retries per query \
(CI writes this matrix to BENCH_PR6.json).";

/// Everything `main` needs for one run.
#[derive(Debug, Clone)]
pub struct CliOptions {
    /// Zero-copy trajectory section configuration.
    pub trajectory: TrajectoryConfig,
    /// Serving-throughput section configuration.
    pub qps: QpsConfig,
    /// Output path of the trajectory document.
    pub out: String,
    /// Output path of the QPS document.
    pub qps_out: String,
    /// Loaded-dataset mode, when `--data-tsv`/`--features-tsv` are given.
    pub ingest: Option<IngestCli>,
    /// Backend-matrix mode, when any `--backend` is given.
    pub backend: Option<BackendCli>,
}

/// The backend-matrix mode's options.
#[derive(Debug, Clone)]
pub struct BackendCli {
    /// Backends to measure, in flag order.
    pub backends: Vec<spq_core::Backend>,
    /// Output path of the backend-matrix document.
    pub out: String,
    /// Length of the measured query stream.
    pub queries: usize,
    /// Batch size for `execute-batch`.
    pub batch: usize,
}

/// The loaded-dataset mode's options.
#[derive(Debug, Clone)]
pub struct IngestCli {
    /// Bench configuration (paths, stream shape, workers, grid).
    pub config: IngestBenchConfig,
    /// Output path of the ingest document.
    pub out: String,
    /// Synthesize an N-object dump to the two paths before ingesting.
    pub synthesize: Option<usize>,
}

/// The `matrix` subcommand's options.
#[derive(Debug, Clone)]
pub struct MatrixCli {
    /// Runner configuration (corpora filter, backends, stream shape).
    pub config: MatrixConfig,
    /// Output path of the matrix document.
    pub out: String,
}

/// The `compare` subcommand's options.
#[derive(Debug, Clone)]
pub struct CompareCli {
    /// Path of the baseline document.
    pub baseline: String,
    /// Path of the candidate document.
    pub candidate: String,
    /// Relative mean-shift threshold.
    pub threshold: f64,
}

/// Parse outcome: run with options, or print usage and exit 0.
#[derive(Debug, Clone)]
pub enum Command {
    /// Run the bench with these options.
    Run(Box<CliOptions>),
    /// `spq-bench matrix ...`: the declarative benchmark matrix.
    Matrix(Box<MatrixCli>),
    /// `spq-bench compare ...`: the regression gate.
    Compare(CompareCli),
    /// `--help`/`-h` was given.
    Help,
}

/// Parses the argument list (without the program name). Errors carry a
/// human-readable message; callers print it with [`USAGE`] and exit 2.
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    match args.first().map(String::as_str) {
        Some("matrix") => return parse_matrix(&args[1..]),
        Some("compare") => return parse_compare(&args[1..]),
        _ => {}
    }
    let mut cfg = TrajectoryConfig::default();
    let mut qps_cfg = QpsConfig::default();
    let mut out = String::from("BENCH_PR2.json");
    let mut qps_out = String::from("BENCH_PR3.json");
    let mut ingest_out = String::from("BENCH_INGEST.json");
    let mut data_tsv: Option<String> = None;
    let mut features_tsv: Option<String> = None;
    let mut ingest_queries = 32usize;
    let mut ingest_batch = 8usize;
    let mut synthesize: Option<usize> = None;
    let mut backends: Vec<spq_core::Backend> = Vec::new();
    let mut backend_out = String::from("BENCH_PR5.json");
    let mut backend_queries = 24usize;
    let mut backend_batch = 8usize;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, String> {
            i += 1;
            match args.get(i) {
                Some(v) if !v.starts_with("--") => Ok(v.clone()),
                _ => Err(format!("missing value for {flag}")),
            }
        };
        fn parsed<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad value {v:?} for {flag}"))
        }
        match flag {
            "--scale" => cfg.scale = parsed(flag, value()?)?,
            "--seed" => cfg.seed = parsed(flag, value()?)?,
            "--workers" => cfg.workers = parsed(flag, value()?)?,
            "--repeats" => cfg.repeats = parsed(flag, value()?)?,
            "--queries" => cfg.queries = parsed(flag, value()?)?,
            "--grid" => cfg.grid = parsed(flag, value()?)?,
            "--out" => out = value()?,
            "--qps-queries" => qps_cfg.queries = parsed(flag, value()?)?,
            "--qps-batch" => qps_cfg.batch = parsed(flag, value()?)?,
            "--qps-out" => qps_out = value()?,
            "--data-tsv" => data_tsv = Some(value()?),
            "--features-tsv" => features_tsv = Some(value()?),
            "--ingest-out" => ingest_out = value()?,
            "--ingest-queries" => ingest_queries = parsed(flag, value()?)?,
            "--ingest-batch" => ingest_batch = parsed(flag, value()?)?,
            "--synthesize" => synthesize = Some(parsed(flag, value()?)?),
            "--backend" => backends.push(value()?.parse::<spq_core::Backend>()?),
            "--backend-out" => backend_out = value()?,
            "--backend-queries" => backend_queries = parsed(flag, value()?)?,
            "--backend-batch" => backend_batch = parsed(flag, value()?)?,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown argument {other:?}")),
        }
        i += 1;
    }
    // The QPS section follows the shared knobs.
    qps_cfg.scale = cfg.scale;
    qps_cfg.seed = cfg.seed;
    qps_cfg.workers = cfg.workers;
    qps_cfg.grid = cfg.grid;

    let ingest = match (data_tsv, features_tsv) {
        (Some(data), Some(features)) => Some(IngestCli {
            config: IngestBenchConfig {
                data_tsv: data.into(),
                features_tsv: features.into(),
                seed: cfg.seed,
                workers: cfg.workers,
                queries: ingest_queries,
                batch: ingest_batch,
                grid: cfg.grid,
                ..IngestBenchConfig::default()
            },
            out: ingest_out,
            synthesize,
        }),
        (None, None) => {
            if synthesize.is_some() {
                return Err(
                    "--synthesize needs --data-tsv and --features-tsv output paths".to_owned(),
                );
            }
            None
        }
        _ => return Err("--data-tsv and --features-tsv must be given together".to_owned()),
    };

    let backend = if backends.is_empty() {
        None
    } else {
        Some(BackendCli {
            backends,
            out: backend_out,
            queries: backend_queries,
            batch: backend_batch,
        })
    };

    Ok(Command::Run(Box::new(CliOptions {
        trajectory: cfg,
        qps: qps_cfg,
        out,
        qps_out,
        ingest,
        backend,
    })))
}

/// Parses `spq-bench matrix ...` (arguments after the subcommand name).
fn parse_matrix(args: &[String]) -> Result<Command, String> {
    let mut config = MatrixConfig::default();
    let mut backends: Vec<spq_core::Backend> = Vec::new();
    let mut out = String::from("BENCH_MATRIX.json");

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let mut value = || -> Result<String, String> {
            i += 1;
            match args.get(i) {
                Some(v) if !v.starts_with("--") => Ok(v.clone()),
                _ => Err(format!("missing value for {flag}")),
            }
        };
        fn parsed<T: std::str::FromStr>(flag: &str, v: String) -> Result<T, String> {
            v.parse().map_err(|_| format!("bad value {v:?} for {flag}"))
        }
        match flag {
            "--filter" => config.filter = Some(value()?),
            "--backend" => backends.push(value()?.parse::<spq_core::Backend>()?),
            "--scale" => config.scale = parsed(flag, value()?)?,
            "--seed" => config.seed = parsed(flag, value()?)?,
            "--workers" => config.workers = parsed(flag, value()?)?,
            "--queries" => config.queries = parsed(flag, value()?)?,
            "--batch" => config.batch = parsed(flag, value()?)?,
            "--out" => out = value()?,
            "--help" | "-h" => return Ok(Command::Help),
            other => return Err(format!("unknown matrix argument {other:?}")),
        }
        i += 1;
    }
    if !backends.is_empty() {
        config.backends = backends;
    }
    Ok(Command::Matrix(Box::new(MatrixCli { config, out })))
}

/// Parses `spq-bench compare BASELINE CANDIDATE [--threshold F]`.
fn parse_compare(args: &[String]) -> Result<Command, String> {
    let mut paths: Vec<String> = Vec::new();
    let mut threshold = DEFAULT_THRESHOLD;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--threshold" => {
                i += 1;
                let v = match args.get(i) {
                    Some(v) if !v.starts_with("--") => v.clone(),
                    _ => return Err("missing value for --threshold".to_owned()),
                };
                threshold = v
                    .parse()
                    .map_err(|_| format!("bad value {v:?} for --threshold"))?;
                if !(0.0..=10.0).contains(&threshold) {
                    return Err(format!("--threshold {threshold} out of range [0, 10]"));
                }
            }
            "--help" | "-h" => return Ok(Command::Help),
            other if other.starts_with("--") => {
                return Err(format!("unknown compare argument {other:?}"))
            }
            path => paths.push(path.to_owned()),
        }
        i += 1;
    }
    let [baseline, candidate] = paths.as_slice() else {
        return Err(format!(
            "compare needs exactly two document paths, got {}",
            paths.len()
        ));
    };
    Ok(Command::Compare(CompareCli {
        baseline: baseline.clone(),
        candidate: candidate.clone(),
        threshold,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Command, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_args(&owned)
    }

    fn run(args: &[&str]) -> CliOptions {
        match parse(args).unwrap() {
            Command::Run(o) => *o,
            other => panic!("expected Run, got {other:?}"),
        }
    }

    #[test]
    fn defaults_without_flags() {
        let o = run(&[]);
        assert_eq!(o.out, "BENCH_PR2.json");
        assert_eq!(o.qps_out, "BENCH_PR3.json");
        assert!(o.ingest.is_none());
        assert!(o.backend.is_none());
        assert_eq!(o.qps.seed, o.trajectory.seed);
    }

    #[test]
    fn backend_flags_accumulate() {
        use spq_core::Backend;
        let o = run(&[
            "--backend",
            "local",
            "--backend",
            "sharded:4",
            "--backend-out",
            "b5.json",
            "--backend-queries",
            "12",
            "--backend-batch",
            "6",
        ]);
        let backend = o.backend.expect("backend mode");
        assert_eq!(
            backend.backends,
            vec![Backend::Local, Backend::Sharded { shards: 4 }]
        );
        assert_eq!(backend.out, "b5.json");
        assert_eq!(backend.queries, 12);
        assert_eq!(backend.batch, 6);
    }

    #[test]
    fn backend_mode_combines_with_dump_paths() {
        let o = run(&[
            "--backend",
            "sharded",
            "--data-tsv",
            "d.tsv",
            "--features-tsv",
            "f.tsv",
            "--synthesize",
            "1000",
        ]);
        assert!(o.backend.is_some());
        assert!(o.ingest.is_some());
    }

    #[test]
    fn remote_backends_parse_with_a_worker_count() {
        use spq_core::Backend;
        let o = run(&["--backend", "remote:3", "--backend", "remote:1"]);
        assert_eq!(
            o.backend.expect("backend mode").backends,
            vec![
                Backend::Remote { workers: 3 },
                Backend::Remote { workers: 1 }
            ]
        );
    }

    #[test]
    fn bad_backend_names_are_errors() {
        // Bare `remote` stays an error: the worker count is the contract.
        assert!(parse(&["--backend", "remote"]).is_err());
        assert!(parse(&["--backend", "remote:0"]).is_err());
        assert!(parse(&["--backend", "remote:x"]).is_err());
        assert!(parse(&["--backend", "sharded:0"]).is_err());
        let err = parse(&["--backend"]).unwrap_err();
        assert!(err.contains("missing value for --backend"), "{err}");
    }

    #[test]
    fn parses_shared_and_qps_flags() {
        let o = run(&[
            "--scale",
            "0.5",
            "--seed",
            "9",
            "--workers",
            "3",
            "--repeats",
            "2",
            "--queries",
            "4",
            "--grid",
            "20",
            "--out",
            "a.json",
            "--qps-queries",
            "12",
            "--qps-batch",
            "6",
            "--qps-out",
            "b.json",
        ]);
        assert_eq!(o.trajectory.scale, 0.5);
        assert_eq!(o.trajectory.seed, 9);
        assert_eq!(o.trajectory.workers, 3);
        assert_eq!(o.trajectory.repeats, 2);
        assert_eq!(o.trajectory.queries, 4);
        assert_eq!(o.trajectory.grid, 20);
        assert_eq!(o.out, "a.json");
        assert_eq!(o.qps.queries, 12);
        assert_eq!(o.qps.batch, 6);
        assert_eq!(o.qps_out, "b.json");
        // Shared knobs propagate into the QPS section.
        assert_eq!(o.qps.scale, 0.5);
        assert_eq!(o.qps.seed, 9);
        assert_eq!(o.qps.workers, 3);
        assert_eq!(o.qps.grid, 20);
    }

    #[test]
    fn unknown_flags_are_errors_anywhere() {
        assert!(parse(&["--bogus"]).is_err());
        // The regression this parser exists for: an unknown flag after
        // --out must error, not be swallowed as the value of --out.
        let err = parse(&["--out", "--bogus"]).unwrap_err();
        assert!(err.contains("missing value for --out"), "{err}");
        assert!(parse(&["--scale", "0.1", "--nope", "x"]).is_err());
    }

    #[test]
    fn missing_and_bad_values_are_errors() {
        assert!(parse(&["--seed"]).unwrap_err().contains("missing value"));
        assert!(parse(&["--seed", "abc"]).unwrap_err().contains("bad value"));
        assert!(parse(&["--qps-batch"]).is_err());
    }

    #[test]
    fn help_short_circuits() {
        assert!(matches!(parse(&["--help"]).unwrap(), Command::Help));
        assert!(matches!(parse(&["-h"]).unwrap(), Command::Help));
        assert!(matches!(
            parse(&["matrix", "--help"]).unwrap(),
            Command::Help
        ));
        assert!(matches!(parse(&["compare", "-h"]).unwrap(), Command::Help));
    }

    #[test]
    fn matrix_subcommand_defaults_and_flags() {
        use spq_core::Backend;
        let Command::Matrix(m) = parse(&["matrix"]).unwrap() else {
            panic!("expected Matrix")
        };
        assert_eq!(m.out, "BENCH_MATRIX.json");
        assert!(m.config.filter.is_none());
        assert_eq!(
            m.config.backends,
            vec![
                Backend::Local,
                Backend::Sharded { shards: 4 },
                Backend::Remote { workers: 2 }
            ]
        );

        let Command::Matrix(m) = parse(&[
            "matrix",
            "--filter",
            "remote:*",
            "--backend",
            "local",
            "--backend",
            "sharded:2",
            "--scale",
            "0.05",
            "--seed",
            "7",
            "--workers",
            "2",
            "--queries",
            "16",
            "--batch",
            "4",
            "--out",
            "m.json",
        ])
        .unwrap() else {
            panic!("expected Matrix")
        };
        assert_eq!(m.config.filter.as_deref(), Some("remote:*"));
        assert_eq!(
            m.config.backends,
            vec![Backend::Local, Backend::Sharded { shards: 2 }]
        );
        assert_eq!(m.config.scale, 0.05);
        assert_eq!(m.config.seed, 7);
        assert_eq!(m.config.workers, 2);
        assert_eq!(m.config.queries, 16);
        assert_eq!(m.config.batch, 4);
        assert_eq!(m.out, "m.json");
    }

    #[test]
    fn matrix_rejects_bad_flags_and_values() {
        assert!(parse(&["matrix", "--bogus"]).is_err());
        assert!(parse(&["matrix", "--filter"]).is_err());
        assert!(parse(&["matrix", "--filter", "--out"]).is_err());
        assert!(parse(&["matrix", "--backend", "remote"]).is_err());
        assert!(parse(&["matrix", "--queries", "x"]).is_err());
    }

    #[test]
    fn compare_subcommand_takes_two_paths() {
        let Command::Compare(c) = parse(&["compare", "a.json", "b.json"]).unwrap() else {
            panic!("expected Compare")
        };
        assert_eq!(c.baseline, "a.json");
        assert_eq!(c.candidate, "b.json");
        assert_eq!(c.threshold, crate::matrix::DEFAULT_THRESHOLD);

        let Command::Compare(c) =
            parse(&["compare", "a.json", "b.json", "--threshold", "1.0"]).unwrap()
        else {
            panic!("expected Compare")
        };
        assert_eq!(c.threshold, 1.0);
    }

    #[test]
    fn compare_rejects_wrong_arity_and_bad_thresholds() {
        assert!(parse(&["compare"]).is_err());
        assert!(parse(&["compare", "a.json"]).is_err());
        assert!(parse(&["compare", "a", "b", "c"]).is_err());
        assert!(parse(&["compare", "a", "b", "--threshold"]).is_err());
        assert!(parse(&["compare", "a", "b", "--threshold", "-1"]).is_err());
        assert!(parse(&["compare", "a", "b", "--threshold", "99"]).is_err());
        assert!(parse(&["compare", "a", "b", "--nope"]).is_err());
    }

    #[test]
    fn ingest_mode_requires_both_paths() {
        let err = parse(&["--data-tsv", "d.tsv"]).unwrap_err();
        assert!(err.contains("must be given together"));
        let err = parse(&["--synthesize", "1000"]).unwrap_err();
        assert!(err.contains("--synthesize needs"));

        let o = run(&[
            "--data-tsv",
            "d.tsv",
            "--features-tsv",
            "f.tsv",
            "--ingest-out",
            "i.json",
            "--ingest-queries",
            "16",
            "--ingest-batch",
            "4",
            "--synthesize",
            "5000",
            "--seed",
            "7",
            "--grid",
            "10",
        ]);
        let ingest = o.ingest.expect("ingest mode");
        assert_eq!(ingest.config.data_tsv.to_str(), Some("d.tsv"));
        assert_eq!(ingest.config.features_tsv.to_str(), Some("f.tsv"));
        assert_eq!(ingest.out, "i.json");
        assert_eq!(ingest.config.queries, 16);
        assert_eq!(ingest.config.batch, 4);
        assert_eq!(ingest.synthesize, Some(5000));
        assert_eq!(ingest.config.seed, 7);
        assert_eq!(ingest.config.grid, 10);
    }
}
