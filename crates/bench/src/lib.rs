//! Benchmark harness reproducing the experimental study of the EDBT 2017
//! SPQ paper (Section 7).
//!
//! Every figure of the paper maps to a harness entry point:
//!
//! | Paper figure | Harness id | Sweep |
//! |---|---|---|
//! | Fig. 5(a–d) | `fig5`  | FL-like: grid, keywords, radius, k |
//! | Fig. 6(a–d) | `fig6`  | TW-like: grid, keywords, radius, k |
//! | Fig. 7(a–d) | `fig7`  | UN: grid, keywords, radius, k |
//! | Fig. 8      | `fig8`  | UN: dataset size 64→512 (scaled) |
//! | Fig. 9(a–d) | `fig9`  | CL: grid, keywords, radius, k (+ pSPQ blow-up panel) |
//! | §6.2 df     | `df`    | duplication factor, Monte Carlo vs closed form |
//! | §6.3        | `cellsize` | reducer cost vs the `df·a⁴` model |
//!
//! Datasets are scaled-down but shape-preserving versions of the paper's
//! (the cost model is `|O|·|F|·df/R²` per reducer, so relative orderings
//! survive linear rescaling); the `--scale` knob grows them back toward
//! paper sizes when time permits. Reported metrics: measured wall-clock of
//! the in-process job, plus the simulated makespan on a 128-slot virtual
//! cluster (the paper's 16 nodes × 8 cores).

pub mod backend_bench;
pub mod baseline;
pub mod cli;
pub mod figures;
pub mod ingest_bench;
pub mod matrix;
pub mod params;
pub mod qps;
pub mod report;
pub mod trajectory;

use spq_core::{Algorithm, ObjectRef, SharedDataset, SpqExecutor, SpqQuery};
use spq_mapreduce::SimulatedCluster;
use std::time::Duration;

/// Global harness configuration.
#[derive(Debug, Clone)]
pub struct BenchConfig {
    /// Multiplier on every dataset size (1.0 = the harness defaults, which
    /// are themselves scaled-down paper sizes; see [`params`]).
    pub scale: f64,
    /// RNG seed for datasets and query workloads.
    pub seed: u64,
    /// Real worker threads executing map/reduce tasks.
    pub workers: usize,
    /// Random keyword sets averaged per plotted point.
    pub queries_per_point: usize,
    /// Virtual cluster slots for the simulated makespan.
    pub sim_slots: usize,
    /// Where CSVs are written (`None` = skip).
    pub out_dir: Option<std::path::PathBuf>,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            scale: 1.0,
            seed: 2017,
            workers: std::thread::available_parallelism().map_or(8, |n| n.get()),
            queries_per_point: 3,
            sim_slots: 128,
            out_dir: Some(std::path::PathBuf::from("results")),
        }
    }
}

/// One measured execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Measurement {
    /// Wall-clock of the in-process MapReduce job.
    pub measured: Duration,
    /// Simulated makespan on the virtual cluster.
    pub simulated: Duration,
    /// Features examined by reducers (early-termination effectiveness).
    pub features_examined: u64,
    /// Records that crossed the shuffle (duplication overhead).
    pub shuffle_records: u64,
    /// Busiest-reducer / mean-reducer input ratio.
    pub reduce_skew: f64,
    /// Number of results returned.
    pub results: usize,
}

impl Measurement {
    fn accumulate(&mut self, other: &Measurement) {
        self.measured += other.measured;
        self.simulated += other.simulated;
        self.features_examined += other.features_examined;
        self.shuffle_records += other.shuffle_records;
        self.reduce_skew += other.reduce_skew;
        self.results += other.results;
    }

    fn divide(&mut self, n: u32) {
        if n == 0 {
            return;
        }
        self.measured /= n;
        self.simulated /= n;
        self.features_examined /= n as u64;
        self.shuffle_records /= n as u64;
        self.reduce_skew /= n as f64;
        self.results /= n as usize;
    }
}

/// Runs one job over a shared dataset (zero-copy path) and extracts the
/// measurement.
pub fn measure(
    executor: &SpqExecutor,
    dataset: &SharedDataset,
    splits: &[Vec<ObjectRef>],
    query: &SpqQuery,
    sim_slots: usize,
) -> Measurement {
    let result = executor
        .run_shared(dataset, splits, query)
        .expect("benchmark job must not fail");
    let stats = &result.stats;
    Measurement {
        measured: stats.total_wall,
        simulated: SimulatedCluster::new(sim_slots).job_makespan(stats),
        features_examined: stats
            .counters
            .get(spq_core::partitioning::COUNTER_REDUCE_FEATURES_EXAMINED),
        shuffle_records: stats.shuffle_records,
        reduce_skew: stats.reduce_skew(),
        results: result.top_k.len(),
    }
}

/// Averages the measurements of several queries for one configuration.
pub fn measure_avg(
    executor: &SpqExecutor,
    dataset: &SharedDataset,
    splits: &[Vec<ObjectRef>],
    queries: &[SpqQuery],
    sim_slots: usize,
) -> Measurement {
    let mut acc = Measurement::default();
    for q in queries {
        acc.accumulate(&measure(executor, dataset, splits, q, sim_slots));
    }
    acc.divide(queries.len() as u32);
    acc
}

/// One x-axis point of a panel: the x value plus one averaged measurement
/// per algorithm (in [`Panel::algorithms`] order).
#[derive(Debug, Clone)]
pub struct PanelRow {
    /// The x value as printed (grid size, keyword count, …).
    pub x: String,
    /// Averaged measurements, aligned with the panel's algorithm list.
    pub cells: Vec<Measurement>,
}

/// One chart of the paper, as a table of rows.
#[derive(Debug, Clone)]
pub struct Panel {
    /// Harness id, e.g. `fig5a`.
    pub id: String,
    /// Human title, e.g. `Figure 5(a) — FL, varying grid size`.
    pub title: String,
    /// Label of the x column.
    pub x_label: String,
    /// Algorithms measured, in column order.
    pub algorithms: Vec<Algorithm>,
    /// The sweep.
    pub rows: Vec<PanelRow>,
}

/// Shared setup for the Criterion figure benches: a scaled-down dataset,
/// its splits, and a reproducible query batch.
pub mod criterion_support {
    use crate::params;
    use spq_core::SpqQuery;
    use spq_core::{ObjectRef, SharedDataset};
    use spq_data::{DatasetGenerator, KeywordSelection, QueryGenerator};

    /// Prepared inputs for one figure bench.
    pub struct FigureInputs {
        /// The shared object store (held once; queries shuffle handles).
        pub dataset: SharedDataset,
        /// Mixed reference splits into `dataset`.
        pub splits: Vec<Vec<ObjectRef>>,
        /// Vocabulary cardinality (for drawing more queries).
        pub vocab_size: usize,
        /// Default cell side of the figure's default grid.
        pub default_cell: f64,
        /// Keyword-selection strategy for query generation.
        pub selection: KeywordSelection,
    }

    /// Generates a dataset at `scale` × the harness default size and
    /// splits it across 8 map splits.
    pub fn setup(
        gen: &dyn DatasetGenerator,
        base_size: usize,
        scale: f64,
        default_grid: u32,
        seed: u64,
    ) -> FigureInputs {
        setup_with_selection(
            gen,
            base_size,
            scale,
            default_grid,
            seed,
            KeywordSelection::Random,
        )
    }

    /// [`setup`] with an explicit keyword-selection strategy (the
    /// Zipf-vocabulary figures use frequency-weighted terms; see
    /// `KeywordSelection::Weighted`).
    pub fn setup_with_selection(
        gen: &dyn DatasetGenerator,
        base_size: usize,
        scale: f64,
        default_grid: u32,
        seed: u64,
        selection: KeywordSelection,
    ) -> FigureInputs {
        let dataset = gen.generate(params::scaled(base_size, scale), seed);
        let (shared, splits) = dataset.to_shared_splits(8);
        FigureInputs {
            dataset: shared,
            splits,
            vocab_size: dataset.vocab_size,
            default_cell: 1.0 / default_grid as f64,
            selection,
        }
    }

    impl FigureInputs {
        /// Draws one deterministic query.
        pub fn query(&self, k: usize, radius_pct: f64, keywords: usize, seed: u64) -> SpqQuery {
            QueryGenerator::new(self.vocab_size, self.selection, seed).generate(
                k,
                self.default_cell * radius_pct / 100.0,
                keywords,
            )
        }
    }
}
