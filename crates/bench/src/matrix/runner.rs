//! The single matrix runner: executes any glob-selected slice of
//! `corpus × algorithm × backend × mode` and emits one [`MatrixReport`].
//!
//! Per benchmark id the runner collects one latency observation per
//! query (amortized batch wall for `execute-batch`, the response's own
//! `wall_micros` for `serve`), asserts every response byte-identical to
//! the plain single-store [`QueryEngine`], and summarizes the sample
//! through [`criterion::stats::summarize`] — bootstrap 95% intervals for
//! mean/p50/p99 plus the Tukey outlier census. Everything data-shaped is
//! deterministic from the seed; only the latencies themselves are
//! machine-dependent.

use super::corpus::{Mode, CORPORA};
use super::record::{MatrixRecord, MatrixReport, ReportConfig};
use super::{bench_id, glob_match};
use criterion::stats::{summarize, BootstrapConfig, Sample};
use spq_core::{
    AdmissionConfig, AdmissionQueue, Algorithm, Backend, OverflowPolicy, QueryEngine,
    QueryExecutor, QueryRequest, RankedObject, SpqError, SpqExecutor, SpqService, Ticket,
};
use spq_data::{QueryStream, StreamConfig};
use spq_mapreduce::ClusterConfig;
use std::time::{Duration, Instant};

/// Configuration of one matrix run.
#[derive(Debug, Clone)]
pub struct MatrixConfig {
    /// Backends measured per corpus/algorithm, in id order.
    pub backends: Vec<Backend>,
    /// Optional id glob; `None` runs the full matrix.
    pub filter: Option<String>,
    /// Corpus size multiplier (1k-object floor per corpus).
    pub scale: f64,
    /// Dataset / stream seed.
    pub seed: u64,
    /// Worker threads: serve concurrency and scatter width.
    pub workers: usize,
    /// Measured queries per benchmark id.
    pub queries: usize,
    /// `execute-batch` chunk size.
    pub batch: usize,
    /// Bootstrap parameters for the per-record statistics.
    pub bootstrap: BootstrapConfig,
}

impl Default for MatrixConfig {
    fn default() -> Self {
        Self {
            backends: vec![
                Backend::Local,
                Backend::Sharded { shards: 4 },
                Backend::Remote { workers: 2 },
            ],
            filter: None,
            scale: 1.0,
            seed: 2017,
            workers: ClusterConfig::auto().workers,
            queries: 24,
            batch: 8,
            bootstrap: BootstrapConfig::default(),
        }
    }
}

fn selected(filter: &Option<String>, id: &str) -> bool {
    filter.as_deref().is_none_or(|glob| glob_match(glob, id))
}

/// Runs the selected slice of the matrix.
///
/// # Panics
///
/// Panics if any backend/mode response diverges from the single-store
/// reference — the byte-identity gate every record attests to.
pub fn run_matrix(cfg: &MatrixConfig) -> MatrixReport {
    assert!(!cfg.backends.is_empty(), "need at least one backend");
    let mut records = Vec::new();
    for spec in &CORPORA {
        // Only pay for dataset generation when some id under this corpus
        // survives the filter.
        let wanted: Vec<(Algorithm, Backend, Mode)> = Algorithm::ALL
            .iter()
            .flat_map(|&algorithm| {
                cfg.backends.iter().flat_map(move |&backend| {
                    Mode::ALL
                        .iter()
                        .map(move |&mode| (algorithm, backend, mode))
                })
            })
            .filter(|(algorithm, backend, mode)| {
                selected(
                    &cfg.filter,
                    &bench_id(
                        spec.name,
                        algorithm.name(),
                        &backend.to_string(),
                        mode.name(),
                    ),
                )
            })
            .collect();
        if wanted.is_empty() {
            eprintln!("[matrix] {}: skipped (filter)", spec.name);
            continue;
        }

        let dataset = spec.generate(cfg.scale, cfg.seed);
        let objects = dataset.total();
        eprintln!(
            "[matrix] {}: {objects} objects, {} benchmark ids",
            spec.name,
            wanted.len()
        );
        let bounds = dataset.bounds;
        let cell = bounds.width().max(bounds.height()) / spec.grid as f64;
        let vocab_size = dataset.vocab_size.max(1);
        let defaults = StreamConfig::default();
        let mut stream = QueryStream::new(
            vocab_size,
            StreamConfig {
                radius_classes: [5.0, 10.0, 25.0]
                    .iter()
                    .map(|pct| cell * pct / 100.0)
                    .collect(),
                seed: cfg.seed ^ 13,
                keywords_per_query: defaults.keywords_per_query.min(vocab_size),
                ..defaults
            },
        );
        let queries = stream.batch(cfg.queries);
        let requests: Vec<QueryRequest> = queries.iter().cloned().map(QueryRequest::new).collect();
        let (shared, _) = dataset.to_shared_splits(8);

        for &algorithm in Algorithm::ALL.iter() {
            if !wanted.iter().any(|(a, _, _)| *a == algorithm) {
                continue;
            }
            let exec = SpqExecutor::new(bounds)
                .algorithm(algorithm)
                .grid_size(spec.grid)
                .cluster(ClusterConfig::with_workers(cfg.workers));
            let reference_engine = QueryEngine::new(exec.clone(), shared.clone());
            let reference: Vec<Vec<RankedObject>> = requests
                .iter()
                .map(|r| reference_engine.execute(r).expect("reference job").results)
                .collect();

            for &backend in &cfg.backends {
                let modes: Vec<Mode> = wanted
                    .iter()
                    .filter(|(a, b, _)| *a == algorithm && *b == backend)
                    .map(|(_, _, m)| *m)
                    .collect();
                if modes.is_empty() {
                    continue;
                }
                let service = SpqService::build(exec.clone(), shared.clone(), backend)
                    .expect("service build");
                for mode in modes {
                    let id = bench_id(
                        spec.name,
                        algorithm.name(),
                        &backend.to_string(),
                        mode.name(),
                    );
                    let measured = measure_mode(&service, &requests, &reference, mode, cfg, &id);
                    records.push(make_record(
                        &id, spec.name, algorithm, backend, mode, objects, measured, cfg,
                    ));
                }
            }
        }
    }
    MatrixReport {
        schema_version: super::record::SCHEMA_VERSION,
        config: ReportConfig {
            seed: cfg.seed,
            scale: cfg.scale,
            queries: cfg.queries,
            batch: cfg.batch,
            workers: cfg.workers,
            filter: cfg.filter.clone(),
        },
        records,
    }
}

/// What one mode measurement produced: the per-query latency sample, the
/// mode's wall clock, and the fraction of offered requests not answered
/// (nonzero only for `serve-admission`).
struct Measured {
    latencies: Vec<Duration>,
    wall: Duration,
    shed_rate: f64,
}

fn measure_mode(
    service: &SpqService,
    requests: &[QueryRequest],
    reference: &[Vec<RankedObject>],
    mode: Mode,
    cfg: &MatrixConfig,
    id: &str,
) -> Measured {
    match mode {
        Mode::Execute => {
            let mut latencies = Vec::with_capacity(requests.len());
            let wall = Instant::now();
            for (request, expect) in requests.iter().zip(reference) {
                let t0 = Instant::now();
                let response = service.execute(request).expect("execute");
                latencies.push(t0.elapsed());
                assert_eq!(&response.results, expect, "{id}: execute diverged");
            }
            Measured {
                latencies,
                wall: wall.elapsed(),
                shed_rate: 0.0,
            }
        }
        Mode::ExecuteBatch => {
            let mut latencies = Vec::with_capacity(requests.len());
            let chunk_size = cfg.batch.max(1);
            let wall = Instant::now();
            for (chunk, expect) in requests
                .chunks(chunk_size)
                .zip(reference.chunks(chunk_size))
            {
                let t0 = Instant::now();
                let responses = service.execute_batch(chunk).expect("batch");
                let amortized = t0.elapsed() / chunk.len() as u32;
                for (response, expect) in responses.iter().zip(expect) {
                    assert_eq!(&response.results, expect, "{id}: batch diverged");
                    latencies.push(amortized);
                }
            }
            Measured {
                latencies,
                wall: wall.elapsed(),
                shed_rate: 0.0,
            }
        }
        Mode::Serve => {
            let wall = Instant::now();
            let responses = service
                .serve_requests(requests, cfg.workers.max(1))
                .expect("serve");
            let wall = wall.elapsed();
            let latencies = responses
                .iter()
                .zip(reference)
                .map(|(response, expect)| {
                    assert_eq!(&response.results, expect, "{id}: serve diverged");
                    Duration::from_micros(response.stats.wall_micros)
                })
                .collect();
            Measured {
                latencies,
                wall,
                shed_rate: 0.0,
            }
        }
        Mode::ServeAdmission => measure_serve_admission(service, requests, reference, cfg, id),
    }
}

/// Drives the admission front-end at exactly 2× overload, the ISSUE's
/// acceptance scenario, with a fully deterministic schedule:
///
/// * the cap is sized for 1.5× the stream, so of the second (overload)
///   copy exactly half is admitted and half rejected with `Overloaded`;
/// * the admitted overload copies carry an already-expired deadline, so
///   the first pump sheds every one of them with `DeadlineExceeded`;
/// * the originals carry no deadline and a higher priority, execute in
///   coalesced windows, and are asserted byte-identical to the
///   single-store reference.
///
/// The latency sample is the executed originals' own `wall_micros`; the
/// shed rate is `(rejected + shed) / offered = 0.5` by construction.
fn measure_serve_admission(
    service: &SpqService,
    requests: &[QueryRequest],
    reference: &[Vec<RankedObject>],
    cfg: &MatrixConfig,
    id: &str,
) -> Measured {
    let n = requests.len();
    let queue = AdmissionQueue::new(
        service,
        AdmissionConfig::default()
            .with_max_in_flight((n + n / 2).max(1))
            .with_batch_max(cfg.batch.max(1))
            .with_batch_ticks(1)
            .with_overflow(OverflowPolicy::Reject),
    )
    .expect("admission config");

    let wall = Instant::now();
    let originals: Vec<Ticket> = requests
        .iter()
        .map(|r| {
            queue
                .submit(r.clone().with_priority(1))
                .expect("under-cap submit")
        })
        .collect();
    // The overload copy: same stream again, lower priority, deadline
    // already behind the clock at the first window close.
    let mut rejected = 0usize;
    let doomed: Vec<Ticket> = requests
        .iter()
        .filter_map(|r| match queue.submit(r.clone().with_deadline(0)) {
            Ok(ticket) => Some(ticket),
            Err(SpqError::Overloaded { .. }) => {
                rejected += 1;
                None
            }
            Err(other) => panic!("{id}: unexpected submit error: {other}"),
        })
        .collect();
    let report = queue.drain();
    let wall = wall.elapsed();

    assert_eq!(report.executed, n, "{id}: every original executes");
    assert_eq!(rejected, n - n / 2, "{id}: overload rejections at the cap");
    for ticket in doomed {
        match ticket.wait() {
            Err(SpqError::DeadlineExceeded { .. }) => {}
            other => panic!("{id}: overload copy should be shed, got {other:?}"),
        }
    }
    let latencies: Vec<Duration> = originals
        .into_iter()
        .zip(reference)
        .map(|(ticket, expect)| {
            let response = ticket.wait().expect("admitted original");
            assert_eq!(&response.results, expect, "{id}: serve-admission diverged");
            Duration::from_micros(response.stats.wall_micros)
        })
        .collect();
    let stats = queue.stats();
    let offered = stats.submitted.max(1);
    Measured {
        latencies,
        wall,
        shed_rate: (stats.rejected_overload + stats.shed_deadline) as f64 / offered as f64,
    }
}

// One call site, assembling a record from the measurement locals; a
// params struct would just restate the Record fields.
#[allow(clippy::too_many_arguments)]
fn make_record(
    id: &str,
    corpus: &str,
    algorithm: Algorithm,
    backend: Backend,
    mode: Mode,
    objects: usize,
    measured: Measured,
    cfg: &MatrixConfig,
) -> MatrixRecord {
    let ms: Vec<f64> = measured
        .latencies
        .iter()
        .map(|d| d.as_secs_f64() * 1e3)
        .collect();
    let summary = summarize(&Sample::new(ms), &cfg.bootstrap);
    MatrixRecord {
        id: id.to_owned(),
        corpus: corpus.to_owned(),
        algorithm: algorithm.name().to_owned(),
        backend: backend.to_string(),
        mode: mode.name().to_owned(),
        objects,
        samples: summary.samples,
        qps: measured.latencies.len() as f64 / measured.wall.as_secs_f64().max(1e-12),
        shed_rate: measured.shed_rate,
        // Reaching this point at all means every assert above held.
        identical_to_reference: true,
        mean_ms: summary.mean,
        p50_ms: summary.p50,
        p99_ms: summary.p99,
        outliers: summary.outliers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filters_skip_whole_corpora() {
        assert!(selected(&None, "anything"));
        assert!(selected(
            &Some("uniform-120k/*".into()),
            "uniform-120k/pSPQ/local/execute"
        ));
        assert!(!selected(
            &Some("uniform-120k/*".into()),
            "flickr-40k/pSPQ/local/execute"
        ));
    }
}
