//! `spq-bench compare`: the CI regression gate over two matrix reports.
//!
//! Each benchmark id present in both documents is classified by its
//! **mean-latency** bootstrap intervals: if the candidate's 95% interval
//! overlaps the baseline's, the difference is statistical noise and the
//! id is *unchanged*; if the intervals are disjoint AND the point means
//! differ by more than the relative threshold, the id is *improved* or
//! *regressed* by direction. Requiring both conditions keeps the gate
//! honest on noisy runners: disjoint-but-close intervals (tiny variance)
//! don't fail the build, and huge-but-overlapping deltas (huge variance)
//! don't either. Ids present in only one document are reported as
//! added/removed, never silently ignored.

use super::record::MatrixReport;
use criterion::stats::Estimate;
use std::path::Path;

/// Default relative mean-shift threshold: 5% — deltas smaller than this
/// are never called a change even with disjoint intervals.
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// Classification of one shared benchmark id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Candidate is statistically faster by more than the threshold.
    Improved,
    /// Candidate is statistically slower by more than the threshold.
    Regressed,
    /// Within noise or under the threshold.
    Unchanged,
}

impl Verdict {
    /// Display label for the markdown table.
    pub fn label(&self) -> &'static str {
        match self {
            Verdict::Improved => "improved",
            Verdict::Regressed => "**regressed**",
            Verdict::Unchanged => "unchanged",
        }
    }
}

/// One shared id's delta.
#[derive(Debug, Clone)]
pub struct Delta {
    /// The benchmark id.
    pub id: String,
    /// Baseline mean latency (ms) with interval.
    pub baseline: Estimate,
    /// Candidate mean latency (ms) with interval.
    pub candidate: Estimate,
    /// `candidate.point / baseline.point` (>1 = slower).
    pub ratio: f64,
    /// The classification.
    pub verdict: Verdict,
}

/// The full comparison of two reports.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// Shared ids in candidate order.
    pub deltas: Vec<Delta>,
    /// Ids only in the candidate.
    pub added: Vec<String>,
    /// Ids only in the baseline.
    pub removed: Vec<String>,
    /// The relative threshold used.
    pub threshold: f64,
}

impl Comparison {
    /// Number of regressed ids — the gate's exit condition.
    pub fn regressions(&self) -> usize {
        self.deltas
            .iter()
            .filter(|d| d.verdict == Verdict::Regressed)
            .count()
    }

    /// Renders the comparison as a markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::from("## Benchmark comparison\n\n");
        out.push_str(&format!(
            "Gate: mean 95% CIs disjoint AND |Δ| > {:.1}% (improved/regressed), else unchanged.\n\n",
            self.threshold * 100.0
        ));
        if !self.deltas.is_empty() {
            out.push_str(
                "| benchmark | baseline mean ms [95% CI] | candidate mean ms [95% CI] | Δ | verdict |\n\
                 |---|---|---|---|---|\n",
            );
            for d in &self.deltas {
                out.push_str(&format!(
                    "| `{}` | {:.3} [{:.3}, {:.3}] | {:.3} [{:.3}, {:.3}] | {:+.1}% | {} |\n",
                    d.id,
                    d.baseline.point,
                    d.baseline.lo,
                    d.baseline.hi,
                    d.candidate.point,
                    d.candidate.lo,
                    d.candidate.hi,
                    (d.ratio - 1.0) * 100.0,
                    d.verdict.label()
                ));
            }
        }
        for (title, ids) in [("Added", &self.added), ("Removed", &self.removed)] {
            if !ids.is_empty() {
                out.push_str(&format!("\n### {title} benchmarks\n\n"));
                for id in ids {
                    out.push_str(&format!("- `{id}`\n"));
                }
            }
        }
        let (improved, unchanged) = (
            self.deltas
                .iter()
                .filter(|d| d.verdict == Verdict::Improved)
                .count(),
            self.deltas
                .iter()
                .filter(|d| d.verdict == Verdict::Unchanged)
                .count(),
        );
        out.push_str(&format!(
            "\n{} compared: {} regressed, {improved} improved, {unchanged} unchanged; {} added, {} removed.\n",
            self.deltas.len(),
            self.regressions(),
            self.added.len(),
            self.removed.len()
        ));
        out
    }
}

fn classify(baseline: &Estimate, candidate: &Estimate, threshold: f64) -> (f64, Verdict) {
    let ratio = candidate.point / baseline.point.max(1e-12);
    let verdict = if candidate.overlaps(baseline) {
        Verdict::Unchanged
    } else if ratio > 1.0 + threshold {
        Verdict::Regressed
    } else if ratio < 1.0 - threshold {
        Verdict::Improved
    } else {
        Verdict::Unchanged
    };
    (ratio, verdict)
}

/// Compares two parsed reports.
pub fn compare_reports(
    baseline: &MatrixReport,
    candidate: &MatrixReport,
    threshold: f64,
) -> Comparison {
    let mut deltas = Vec::new();
    let mut added = Vec::new();
    for record in &candidate.records {
        match baseline.records.iter().find(|b| b.id == record.id) {
            Some(base) => {
                let (ratio, verdict) = classify(&base.mean_ms, &record.mean_ms, threshold);
                deltas.push(Delta {
                    id: record.id.clone(),
                    baseline: base.mean_ms,
                    candidate: record.mean_ms,
                    ratio,
                    verdict,
                });
            }
            None => added.push(record.id.clone()),
        }
    }
    let removed = baseline
        .records
        .iter()
        .filter(|b| !candidate.records.iter().any(|c| c.id == b.id))
        .map(|b| b.id.clone())
        .collect();
    Comparison {
        deltas,
        added,
        removed,
        threshold,
    }
}

/// Reads, parses and compares two report files.
pub fn compare_files(
    baseline: &Path,
    candidate: &Path,
    threshold: f64,
) -> Result<Comparison, String> {
    let base = MatrixReport::from_file(baseline)?;
    let cand = MatrixReport::from_file(candidate)?;
    Ok(compare_reports(&base, &cand, threshold))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::record::synthetic_fixture;

    fn shift(report: &MatrixReport, id_contains: &str, factor: f64) -> MatrixReport {
        let mut out = report.clone();
        for r in &mut out.records {
            if r.id.contains(id_contains) {
                for e in [&mut r.mean_ms, &mut r.p50_ms, &mut r.p99_ms] {
                    e.point *= factor;
                    e.lo *= factor;
                    e.hi *= factor;
                }
            }
        }
        out
    }

    #[test]
    fn identical_reports_are_all_unchanged() {
        let report = synthetic_fixture();
        let cmp = compare_reports(&report, &report, DEFAULT_THRESHOLD);
        assert_eq!(cmp.deltas.len(), report.records.len());
        assert_eq!(cmp.regressions(), 0);
        assert!(cmp.added.is_empty() && cmp.removed.is_empty());
        assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Unchanged));
    }

    #[test]
    fn a_30_percent_slowdown_regresses_and_a_speedup_improves() {
        let base = synthetic_fixture();
        let slow = shift(&base, "pSPQ/local", 1.3);
        let cmp = compare_reports(&base, &slow, DEFAULT_THRESHOLD);
        assert_eq!(cmp.regressions(), 1);
        let d = cmp
            .deltas
            .iter()
            .find(|d| d.id.contains("pSPQ/local"))
            .unwrap();
        assert_eq!(d.verdict, Verdict::Regressed);
        assert!((d.ratio - 1.3).abs() < 1e-9);

        // The same shift seen from the other side is an improvement.
        let cmp = compare_reports(&slow, &base, DEFAULT_THRESHOLD);
        assert_eq!(cmp.regressions(), 0);
        assert!(cmp.deltas.iter().any(|d| d.verdict == Verdict::Improved));
    }

    #[test]
    fn overlapping_intervals_are_noise_even_with_large_point_shift() {
        let base = synthetic_fixture();
        let mut cand = base.clone();
        // +8% point shift but a wide interval still overlapping the
        // baseline's: statistically indistinguishable.
        for r in &mut cand.records {
            r.mean_ms.point *= 1.08;
            r.mean_ms.lo = r.mean_ms.point * 0.8;
            r.mean_ms.hi = r.mean_ms.point * 1.2;
        }
        let cmp = compare_reports(&base, &cand, DEFAULT_THRESHOLD);
        assert_eq!(cmp.regressions(), 0);
        assert!(cmp.deltas.iter().all(|d| d.verdict == Verdict::Unchanged));
    }

    #[test]
    fn disjoint_but_sub_threshold_shifts_stay_unchanged() {
        let base = synthetic_fixture();
        // 3% shift with razor-thin disjoint intervals: below the 5%
        // threshold, so not a regression.
        let mut cand = shift(&base, "", 1.03);
        for r in &mut cand.records {
            r.mean_ms.lo = r.mean_ms.point * 0.999;
            r.mean_ms.hi = r.mean_ms.point * 1.001;
        }
        let mut tight_base = base.clone();
        for r in &mut tight_base.records {
            r.mean_ms.lo = r.mean_ms.point * 0.999;
            r.mean_ms.hi = r.mean_ms.point * 1.001;
        }
        let cmp = compare_reports(&tight_base, &cand, DEFAULT_THRESHOLD);
        assert_eq!(cmp.regressions(), 0);
        // A generous threshold keeps even a 30% shift unchanged — the
        // heterogeneous-runner CI configuration.
        let slow = shift(&tight_base, "", 1.3);
        let cmp = compare_reports(&tight_base, &slow, 1.0);
        assert_eq!(cmp.regressions(), 0);
    }

    #[test]
    fn disjoint_id_sets_are_reported_not_ignored() {
        let base = synthetic_fixture();
        let mut cand = base.clone();
        let dropped = cand.records.remove(0);
        let mut renamed = cand.records[0].clone();
        renamed.id = "clustered-60k/pSPQ/local/execute".to_owned();
        cand.records.push(renamed.clone());
        let cmp = compare_reports(&base, &cand, DEFAULT_THRESHOLD);
        assert_eq!(cmp.removed, vec![dropped.id.clone()]);
        assert_eq!(cmp.added, vec![renamed.id.clone()]);
        assert_eq!(cmp.deltas.len(), base.records.len() - 1);
        let md = cmp.to_markdown();
        assert!(md.contains("Added benchmarks"), "{md}");
        assert!(md.contains("Removed benchmarks"), "{md}");
        assert!(md.contains(&dropped.id), "{md}");
    }

    #[test]
    fn markdown_table_carries_intervals_and_summary() {
        let base = synthetic_fixture();
        let slow = shift(&base, "pSPQ/local", 1.3);
        let md = compare_reports(&base, &slow, DEFAULT_THRESHOLD).to_markdown();
        assert!(md.contains("| benchmark |"), "{md}");
        assert!(md.contains("**regressed**"), "{md}");
        assert!(md.contains("+30.0%"), "{md}");
        assert!(md.contains("1 regressed"), "{md}");
    }
}
