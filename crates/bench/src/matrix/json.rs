//! A minimal JSON reader for `spq-bench compare`.
//!
//! The workspace has no serde (vendored stand-ins only), so benchmark
//! documents are written by hand-rolled formatting and read back by this
//! recursive-descent parser. It accepts exactly standard JSON — objects,
//! arrays, strings (with escapes), numbers, booleans, null — and keeps
//! object members in document order.

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON has only doubles).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, members in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing input at byte {pos}"));
        }
        Ok(value)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {pos}", c as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_owned()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("bad literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).expect("ascii number");
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                let esc = bytes.get(*pos).ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{0008}'),
                    b'f' => out.push('\u{000C}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        // Surrogate pairs are out of scope for benchmark
                        // ids; map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                    }
                    other => return Err(format!("bad escape \\{}", *other as char)),
                }
            }
            Some(_) => {
                // Copy one UTF-8 scalar verbatim.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_owned())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(
            Json::parse(r#""a\"b\nA""#).unwrap(),
            Json::Str("a\"b\nA".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let doc = r#"{ "b": [1, 2, {"x": null}], "a": {"nested": true} }"#;
        let v = Json::parse(doc).unwrap();
        let Json::Obj(members) = &v else {
            panic!("object")
        };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("b").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().get("nested").and_then(Json::as_bool),
            Some(true)
        );
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "{\"a\":}", "tru", "\"open", "1 2", "[1] []", "{,}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn round_trips_float_debug_format() {
        // The writers print floats with `{:?}` (shortest round-trip), so
        // the parser must recover them exactly.
        for v in [0.1, 1.0 / 3.0, 123456.789, 1e-12, f64::MAX] {
            let text = format!("{v:?}");
            assert_eq!(Json::parse(&text).unwrap().as_f64(), Some(v));
        }
    }
}
