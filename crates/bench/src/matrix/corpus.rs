//! The data axes of the benchmark matrix: named dataset corpora and
//! facade serving modes.

use crate::params::{scaled, DEFAULT_GRID_REAL, DEFAULT_GRID_SYNTH};
use spq_data::{ClusteredGen, Dataset, DatasetGenerator, FlickrLike, UniformGen};

/// Distribution family of a corpus, mapping onto the paper's dataset
/// shapes (Table 3: synthetic UN/CL, real FL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorpusShape {
    /// Uniformly scattered objects (the paper's UN).
    Uniform,
    /// Gaussian-cluster skew (the paper's CL).
    Clustered,
    /// Flickr-shaped: Zipf vocabulary, hotspot geography (the paper's FL).
    Flickr,
}

/// One named dataset of the matrix. The name embeds the base object
/// count so ids stay self-describing; the actual count in a run is
/// `scaled(base_objects, scale)` and is recorded per record.
#[derive(Debug, Clone, Copy)]
pub struct CorpusSpec {
    /// The id segment, e.g. `uniform-120k`.
    pub name: &'static str,
    /// Distribution family.
    pub shape: CorpusShape,
    /// Object count at `--scale 1.0`.
    pub base_objects: usize,
    /// Grid cells per axis (paper defaults per family).
    pub grid: u32,
}

/// The benchmark corpora, in report order.
pub const CORPORA: [CorpusSpec; 3] = [
    CorpusSpec {
        name: "uniform-120k",
        shape: CorpusShape::Uniform,
        base_objects: 120_000,
        grid: DEFAULT_GRID_SYNTH,
    },
    CorpusSpec {
        name: "clustered-60k",
        shape: CorpusShape::Clustered,
        base_objects: 60_000,
        grid: DEFAULT_GRID_SYNTH,
    },
    CorpusSpec {
        name: "flickr-40k",
        shape: CorpusShape::Flickr,
        base_objects: 40_000,
        grid: DEFAULT_GRID_REAL,
    },
];

impl CorpusSpec {
    /// Generates this corpus at `scale` × its base size (clamped to the
    /// harness' 1k-object floor), deterministically from `seed`.
    pub fn generate(&self, scale: f64, seed: u64) -> Dataset {
        let size = scaled(self.base_objects, scale);
        match self.shape {
            CorpusShape::Uniform => UniformGen.generate(size, seed),
            CorpusShape::Clustered => ClusteredGen.generate(size, seed),
            CorpusShape::Flickr => FlickrLike.generate(size, seed),
        }
    }

    /// Looks a corpus up by id segment.
    pub fn by_name(name: &str) -> Option<&'static CorpusSpec> {
        CORPORA.iter().find(|c| c.name == name)
    }
}

/// The typed-facade lifecycles measured per backend, mirroring the
/// PR 5 backend bench so trajectories stay comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Sequential [`spq_core::QueryExecutor::execute`] calls.
    Execute,
    /// Chunked [`spq_core::QueryExecutor::execute_batch`]; per-query
    /// latency is the batch wall amortized over its queries.
    ExecuteBatch,
    /// Concurrent [`spq_core::QueryExecutor::serve_requests`]; per-query
    /// latency is the response's own `wall_micros`.
    Serve,
    /// The admission front-end ([`spq_core::AdmissionQueue`]) under 2×
    /// overload: the query stream is offered twice against a cap sized
    /// for 1.5×, so the run measures coalesced throughput, the shed rate
    /// and tail latency while the queue rejects and deadline-sheds the
    /// excess.
    ServeAdmission,
}

impl Mode {
    /// Every mode, in id and report order.
    pub const ALL: [Mode; 4] = [
        Mode::Execute,
        Mode::ExecuteBatch,
        Mode::Serve,
        Mode::ServeAdmission,
    ];

    /// The id segment.
    pub fn name(&self) -> &'static str {
        match self {
            Mode::Execute => "execute",
            Mode::ExecuteBatch => "execute-batch",
            Mode::Serve => "serve",
            Mode::ServeAdmission => "serve-admission",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_names_are_unique_and_resolvable() {
        for c in &CORPORA {
            assert_eq!(CorpusSpec::by_name(c.name).unwrap().name, c.name);
            assert!(!c.name.contains('/'), "{}: '/' is the id separator", c.name);
            assert!(!c.name.contains('*'), "{}: '*' is the glob char", c.name);
        }
        assert!(CorpusSpec::by_name("nope").is_none());
    }

    #[test]
    fn corpus_names_embed_their_base_size() {
        for c in &CORPORA {
            let suffix = format!("-{}k", c.base_objects / 1_000);
            assert!(c.name.ends_with(&suffix), "{} vs {suffix}", c.name);
        }
    }

    #[test]
    fn generation_is_deterministic_and_scaled() {
        let spec = CorpusSpec::by_name("uniform-120k").unwrap();
        let a = spec.generate(1e-9, 7); // clamps to the 1k floor
        let b = spec.generate(1e-9, 7);
        assert_eq!(a.total(), 1_000);
        assert_eq!(a.total(), b.total());
        assert_eq!(a.vocab_size, b.vocab_size);
    }

    #[test]
    fn mode_names_match_the_id_grammar() {
        let names: Vec<_> = Mode::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(
            names,
            vec!["execute", "execute-batch", "serve", "serve-admission"]
        );
    }
}
