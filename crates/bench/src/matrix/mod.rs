//! Benchmarks-as-data: the declarative workload matrix behind
//! `spq-bench matrix` and `spq-bench compare`.
//!
//! Every benchmark in the matrix has a stable, filterable id of the form
//!
//! ```text
//! {corpus}/{algorithm}/{backend}/{mode}
//! e.g.  uniform-120k/pSPQ/remote:4/execute-batch
//! ```
//!
//! where the four axes are data, not code: [`corpus::CORPORA`] names the
//! dataset shapes (uniform / clustered / Flickr-shaped), the algorithms
//! are [`spq_core::Algorithm::ALL`], the backends any parseable
//! [`spq_core::Backend`] (`local`, `sharded:N`, `remote:N`), and the
//! modes the three facade lifecycles ([`corpus::Mode`]). One runner
//! ([`runner::run_matrix`]) executes any glob-selected slice of the
//! product and emits one versioned record format ([`record::MatrixReport`]
//! → `BENCH_MATRIX.json`), each record carrying bootstrap 95% confidence
//! intervals and Tukey outlier counts from [`criterion::stats`] plus the
//! byte-identity assertion against the single-store engine. Two reports
//! from different commits are compared by [`compare::compare_reports`] —
//! the CI regression gate.
//!
//! This subsystem supersedes the per-PR ad-hoc JSON writers
//! (`BENCH_PR2..7.json`): those documents remain for their original
//! trajectories, but new performance claims should land as matrix
//! records, which stay comparable across PRs by construction.

pub mod compare;
pub mod corpus;
pub mod json;
pub mod record;
pub mod runner;

pub use compare::{compare_files, compare_reports, Comparison, Delta, Verdict, DEFAULT_THRESHOLD};
pub use corpus::{CorpusShape, CorpusSpec, Mode, CORPORA};
pub use record::{MatrixRecord, MatrixReport, SCHEMA_VERSION};
pub use runner::{run_matrix, MatrixConfig};

/// Builds the canonical benchmark id from its four axes.
pub fn bench_id(corpus: &str, algorithm: &str, backend: &str, mode: &str) -> String {
    format!("{corpus}/{algorithm}/{backend}/{mode}")
}

/// Matches a benchmark id against a shell-style glob where `*` matches
/// any run of characters **including** `/` — so `remote:*` selects every
/// remote backend and `*/pSPQ/*` every pSPQ row. No other metacharacters.
pub fn glob_match(pattern: &str, id: &str) -> bool {
    let parts: Vec<&str> = pattern.split('*').collect();
    if parts.len() == 1 {
        return pattern == id;
    }
    let mut rest = id;
    for (i, part) in parts.iter().enumerate() {
        if i == 0 {
            match rest.strip_prefix(part) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == parts.len() - 1 {
            return part.is_empty() || rest.ends_with(part);
        } else if part.is_empty() {
            continue;
        } else {
            match rest.find(part) {
                Some(at) => rest = &rest[at + part.len()..],
                None => return false,
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_compose_the_four_axes() {
        assert_eq!(
            bench_id("uniform-120k", "pSPQ", "remote:4", "execute-batch"),
            "uniform-120k/pSPQ/remote:4/execute-batch"
        );
    }

    #[test]
    fn globs_match_shell_style() {
        let id = "uniform-120k/pSPQ/remote:4/execute-batch";
        assert!(glob_match(id, id)); // literal
        assert!(glob_match("*", id));
        assert!(glob_match("uniform-120k/*", id));
        assert!(glob_match("*/execute-batch", id));
        assert!(glob_match("*remote:*", id));
        assert!(glob_match("*/pSPQ/*", id));
        assert!(glob_match("uniform-*/pSPQ/*/execute-batch", id));
        assert!(!glob_match("clustered-60k/*", id));
        assert!(!glob_match("*/serve", id));
        assert!(!glob_match("uniform-120k", id)); // literal, no star

        // A `*` crosses `/` by design: backend filters don't need to
        // know how many axes precede them.
        assert!(glob_match("*:4/*", id));
    }

    #[test]
    fn empty_and_degenerate_globs() {
        assert!(glob_match("", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("**", "anything/at/all"));
        assert!(glob_match("*", ""));
    }
}
