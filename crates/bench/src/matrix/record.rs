//! The versioned `BENCH_MATRIX.json` record format.
//!
//! One [`MatrixReport`] holds the run configuration and one
//! [`MatrixRecord`] per benchmark id. The shape is guarded two ways:
//!
//! * [`SCHEMA_VERSION`] is embedded in every document and checked on
//!   read — `compare` refuses to diff documents of different versions.
//! * [`schema_fingerprint`] walks the serialized key paths of a synthetic
//!   document; the golden-file test pins its value, so any field added,
//!   removed or renamed fails the build until the version is bumped and
//!   the fixture regenerated.
//!
//! Floats are serialized with Rust's `{:?}` (shortest representation
//! that round-trips), so `from_json(to_json(r))` reproduces every value
//! bit for bit — the property the serde-style round-trip proptest pins.

use super::json::Json;
use criterion::stats::{Estimate, Outliers};

/// Version of the record shape. **Bump this whenever any field of
/// [`MatrixReport`]/[`MatrixRecord`] changes**, and regenerate the golden
/// fixture; the schema-fingerprint test enforces the coupling.
pub const SCHEMA_VERSION: u32 = 2;

/// The run configuration echoed into the document, so a stored report is
/// self-describing and comparable runs are recognizable.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportConfig {
    /// Dataset / stream seed.
    pub seed: u64,
    /// Corpus size multiplier.
    pub scale: f64,
    /// Measured queries per benchmark id.
    pub queries: usize,
    /// `execute-batch` chunk size.
    pub batch: usize,
    /// Worker threads (serve concurrency, scatter width).
    pub workers: usize,
    /// The id glob this run was restricted to, if any.
    pub filter: Option<String>,
}

/// One benchmark id's measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRecord {
    /// The full id, `{corpus}/{algorithm}/{backend}/{mode}`.
    pub id: String,
    /// First id segment.
    pub corpus: String,
    /// Second id segment (`pSPQ`, `eSPQlen`, `eSPQsco`).
    pub algorithm: String,
    /// Third id segment (`local`, `sharded:N`, `remote:N`).
    pub backend: String,
    /// Fourth id segment (`execute`, `execute-batch`, `serve`,
    /// `serve-admission`).
    pub mode: String,
    /// Objects actually served (after scaling).
    pub objects: usize,
    /// Latency observations behind the estimates.
    pub samples: usize,
    /// Queries per second over the mode's wall clock.
    pub qps: f64,
    /// Fraction of offered requests not answered — overload rejections
    /// plus deadline sheds over total offered. `0.0` for every mode but
    /// `serve-admission`, where the 2×-overload harness makes it
    /// deterministic and nonzero by construction.
    pub shed_rate: f64,
    /// `true` iff every response matched the single-store reference
    /// byte for byte (the runner asserts it, so a written record always
    /// says `true` — the field exists so a reader need not know that).
    pub identical_to_reference: bool,
    /// Mean latency (ms) with its bootstrap 95% interval.
    pub mean_ms: Estimate,
    /// Median latency (ms) with its bootstrap 95% interval.
    pub p50_ms: Estimate,
    /// 99th-percentile latency (ms) with its bootstrap 95% interval.
    pub p99_ms: Estimate,
    /// Tukey-fence outlier census of the latency sample.
    pub outliers: Outliers,
}

/// A full `BENCH_MATRIX.json` document.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixReport {
    /// The shape version this document was written at.
    pub schema_version: u32,
    /// Run configuration echo.
    pub config: ReportConfig,
    /// One record per benchmark id, in corpus/algorithm/backend/mode
    /// order.
    pub records: Vec<MatrixRecord>,
}

fn fmt_estimate(e: &Estimate) -> String {
    format!(
        "{{ \"point\": {:?}, \"lo\": {:?}, \"hi\": {:?} }}",
        e.point, e.lo, e.hi
    )
}

impl MatrixReport {
    /// Renders the document. Key order is fixed; floats use shortest
    /// round-trip formatting.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"bench\": \"spq-bench matrix\",\n",
            self.schema_version
        ));
        let filter = match &self.config.filter {
            Some(f) => format!("{f:?}"),
            None => "null".to_owned(),
        };
        out.push_str(&format!(
            "  \"config\": {{ \"seed\": {}, \"scale\": {:?}, \"queries\": {}, \"batch\": {}, \"workers\": {}, \"filter\": {filter} }},\n",
            self.config.seed, self.config.scale, self.config.queries, self.config.batch, self.config.workers
        ));
        out.push_str("  \"records\": [\n");
        for (i, r) in self.records.iter().enumerate() {
            out.push_str(&format!(
                "    {{\n      \"id\": {:?},\n      \"corpus\": {:?},\n      \"algorithm\": {:?},\n      \"backend\": {:?},\n      \"mode\": {:?},\n",
                r.id, r.corpus, r.algorithm, r.backend, r.mode
            ));
            out.push_str(&format!(
                "      \"objects\": {}, \"samples\": {}, \"qps\": {:?}, \"shed_rate\": {:?}, \"identical_to_reference\": {},\n",
                r.objects, r.samples, r.qps, r.shed_rate, r.identical_to_reference
            ));
            out.push_str(&format!(
                "      \"mean_ms\": {},\n      \"p50_ms\": {},\n      \"p99_ms\": {},\n",
                fmt_estimate(&r.mean_ms),
                fmt_estimate(&r.p50_ms),
                fmt_estimate(&r.p99_ms)
            ));
            out.push_str(&format!(
                "      \"outliers\": {{ \"severe_low\": {}, \"mild_low\": {}, \"mild_high\": {}, \"severe_high\": {} }}\n    }}{}\n",
                r.outliers.severe_low,
                r.outliers.mild_low,
                r.outliers.mild_high,
                r.outliers.severe_high,
                if i + 1 < self.records.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a document, checking the schema version.
    pub fn from_json(text: &str) -> Result<MatrixReport, String> {
        let doc = Json::parse(text)?;
        let version = doc
            .get("schema_version")
            .and_then(Json::as_u64)
            .ok_or("missing schema_version")? as u32;
        if version != SCHEMA_VERSION {
            return Err(format!(
                "schema version {version} != supported {SCHEMA_VERSION}; regenerate the document"
            ));
        }
        let cfg = doc.get("config").ok_or("missing config")?;
        let config = ReportConfig {
            seed: field_u64(cfg, "seed")?,
            scale: field_f64(cfg, "scale")?,
            queries: field_u64(cfg, "queries")? as usize,
            batch: field_u64(cfg, "batch")? as usize,
            workers: field_u64(cfg, "workers")? as usize,
            filter: match cfg.get("filter") {
                None | Some(Json::Null) => None,
                Some(v) => Some(
                    v.as_str()
                        .ok_or("config.filter must be a string")?
                        .to_owned(),
                ),
            },
        };
        let records = doc
            .get("records")
            .and_then(Json::as_array)
            .ok_or("missing records array")?
            .iter()
            .map(parse_record)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MatrixReport {
            schema_version: version,
            config,
            records,
        })
    }

    /// Reads and parses a document from disk.
    pub fn from_file(path: &std::path::Path) -> Result<MatrixReport, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        Self::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

fn field_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn field_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing integer field {key:?}"))
}

fn field_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn parse_estimate(v: &Json, key: &str) -> Result<Estimate, String> {
    let e = v.get(key).ok_or_else(|| format!("missing field {key:?}"))?;
    Ok(Estimate {
        point: field_f64(e, "point")?,
        lo: field_f64(e, "lo")?,
        hi: field_f64(e, "hi")?,
    })
}

fn parse_record(v: &Json) -> Result<MatrixRecord, String> {
    let outliers = v.get("outliers").ok_or("missing outliers")?;
    Ok(MatrixRecord {
        id: field_str(v, "id")?,
        corpus: field_str(v, "corpus")?,
        algorithm: field_str(v, "algorithm")?,
        backend: field_str(v, "backend")?,
        mode: field_str(v, "mode")?,
        objects: field_u64(v, "objects")? as usize,
        samples: field_u64(v, "samples")? as usize,
        qps: field_f64(v, "qps")?,
        shed_rate: field_f64(v, "shed_rate")?,
        identical_to_reference: v
            .get("identical_to_reference")
            .and_then(Json::as_bool)
            .ok_or("missing identical_to_reference")?,
        mean_ms: parse_estimate(v, "mean_ms")?,
        p50_ms: parse_estimate(v, "p50_ms")?,
        p99_ms: parse_estimate(v, "p99_ms")?,
        outliers: Outliers {
            severe_low: field_u64(outliers, "severe_low")? as usize,
            mild_low: field_u64(outliers, "mild_low")? as usize,
            mild_high: field_u64(outliers, "mild_high")? as usize,
            severe_high: field_u64(outliers, "severe_high")? as usize,
        },
    })
}

/// A fixed synthetic report used by the golden-file test and the schema
/// fingerprint — hand-set values, no benchmarking involved.
pub fn synthetic_fixture() -> MatrixReport {
    let est = |point: f64, lo: f64, hi: f64| Estimate { point, lo, hi };
    let record = |id: &str, backend: &str, mode: &str, base: f64, shed_rate: f64| {
        let (corpus, rest) = id.split_once('/').expect("id has axes");
        let algorithm = rest.split('/').next().expect("algorithm axis");
        MatrixRecord {
            id: id.to_owned(),
            corpus: corpus.to_owned(),
            algorithm: algorithm.to_owned(),
            backend: backend.to_owned(),
            mode: mode.to_owned(),
            objects: 1_000,
            samples: 24,
            qps: 4000.0 / base,
            shed_rate,
            identical_to_reference: true,
            mean_ms: est(base, base * 0.9, base * 1.1),
            p50_ms: est(base * 0.95, base * 0.85, base * 1.05),
            p99_ms: est(base * 2.0, base * 1.7, base * 2.4),
            outliers: Outliers {
                severe_low: 0,
                mild_low: 0,
                mild_high: 1,
                severe_high: 0,
            },
        }
    };
    MatrixReport {
        schema_version: SCHEMA_VERSION,
        config: ReportConfig {
            seed: 2017,
            scale: 0.25,
            queries: 24,
            batch: 8,
            workers: 4,
            filter: Some("uniform-120k/*".to_owned()),
        },
        records: vec![
            record(
                "uniform-120k/pSPQ/local/execute",
                "local",
                "execute",
                1.25,
                0.0,
            ),
            record(
                "uniform-120k/pSPQ/sharded:4/execute-batch",
                "sharded:4",
                "execute-batch",
                0.75,
                0.0,
            ),
            record(
                "uniform-120k/eSPQlen/remote:2/serve",
                "remote:2",
                "serve",
                2.5,
                0.0,
            ),
            record(
                "uniform-120k/eSPQsco/local/serve-admission",
                "local",
                "serve-admission",
                0.6,
                0.5,
            ),
        ],
    }
}

/// The sorted set of key paths in a serialized document — the schema's
/// shape as a comparable string. Tests pin this; a change here without a
/// [`SCHEMA_VERSION`] bump is a bug.
pub fn schema_fingerprint() -> String {
    let doc = Json::parse(&synthetic_fixture().to_json()).expect("fixture serializes");
    let mut paths = Vec::new();
    walk("", &doc, &mut paths);
    paths.sort();
    paths.dedup();
    paths.join(";")
}

fn walk(prefix: &str, v: &Json, paths: &mut Vec<String>) {
    match v {
        Json::Obj(members) => {
            for (k, child) in members {
                let path = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                walk(&path, child, paths);
            }
        }
        Json::Arr(items) => {
            // Arrays are homogeneous; one representative is the shape.
            if let Some(first) = items.first() {
                walk(&format!("{prefix}[]"), first, paths);
            }
        }
        _ => paths.push(prefix.to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_round_trips_exactly() {
        let report = synthetic_fixture();
        let parsed = MatrixReport::from_json(&report.to_json()).unwrap();
        assert_eq!(parsed, report);
    }

    #[test]
    fn wrong_schema_version_is_rejected_with_advice() {
        let text = synthetic_fixture()
            .to_json()
            .replace("\"schema_version\": 2", "\"schema_version\": 999");
        let err = MatrixReport::from_json(&text).unwrap_err();
        assert!(err.contains("schema version 999"), "{err}");
        assert!(err.contains("regenerate"), "{err}");
    }

    #[test]
    fn missing_fields_are_named_in_errors() {
        let text = synthetic_fixture().to_json().replace("\"qps\"", "\"zzz\"");
        let err = MatrixReport::from_json(&text).unwrap_err();
        assert!(err.contains("qps"), "{err}");
    }
}
