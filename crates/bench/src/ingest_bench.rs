//! The loaded-dataset bench behind `spq-bench --data-tsv/--features-tsv`
//! and the `BENCH_INGEST.json` document.
//!
//! Where the QPS harness generates its dataset, this bench **loads** one
//! from an external `id<TAB>x<TAB>y<TAB>keywords` dump through
//! `spq_data::ingest`, then pushes a query stream authored against the
//! ingested vocabulary through the same four serving modes
//! ([`crate::qps::measure_algorithms`]). Because the `rebuild` mode is
//! exactly the in-memory generated-dataset lifecycle run over the loaded
//! objects, the built-in byte-identity assertion proves the ingest path
//! changes nothing about query answers — only where the objects came
//! from. Reported on top of the per-mode QPS numbers: ingest wall-clock
//! and throughput in objects per second.

use crate::qps::{measure_algorithms, ModeInputs, QpsAlgoReport};
use spq_data::{ingest, IngestError, IngestOptions, QueryStream, StreamConfig};
use spq_mapreduce::ClusterConfig;
use std::path::PathBuf;
use std::time::Instant;

/// Configuration of one loaded-dataset bench run.
#[derive(Debug, Clone)]
pub struct IngestBenchConfig {
    /// Path of the data-object dump (`id<TAB>x<TAB>y` lines).
    pub data_tsv: PathBuf,
    /// Path of the feature-object dump (`id<TAB>x<TAB>y<TAB>kw,...`).
    pub features_tsv: PathBuf,
    /// RNG seed for the query stream.
    pub seed: u64,
    /// Worker threads (see [`crate::qps::QpsConfig::workers`]).
    pub workers: usize,
    /// Length of the measured query stream.
    pub queries: usize,
    /// Batch size for `engine-batch`.
    pub batch: usize,
    /// Grid cells per axis.
    pub grid: u32,
    /// Fraction of the stream served from the hotspot pool.
    pub hotspot_fraction: f64,
    /// Number of hotspot queries in the pool.
    pub hotspots: usize,
}

impl Default for IngestBenchConfig {
    fn default() -> Self {
        Self {
            data_tsv: PathBuf::new(),
            features_tsv: PathBuf::new(),
            seed: 2017,
            workers: ClusterConfig::auto().workers,
            queries: 32,
            batch: 8,
            grid: crate::params::DEFAULT_GRID_SYNTH,
            hotspot_fraction: 0.5,
            hotspots: 8,
        }
    }
}

/// Load-phase measurements.
#[derive(Debug, Clone)]
pub struct IngestPhase {
    /// Objects loaded, `|O| + |F|`.
    pub objects: usize,
    /// Data objects loaded.
    pub data_objects: usize,
    /// Feature objects loaded.
    pub feature_objects: usize,
    /// Distinct keywords interned from the dump.
    pub vocab_terms: usize,
    /// Total lines read across both files.
    pub lines: u64,
    /// Lines dropped by the malformed-line policy (0 under `Fail`).
    pub skipped: u64,
    /// Ingest wall-clock, milliseconds.
    pub wall_ms: f64,
    /// Ingest throughput, objects per second.
    pub objects_per_sec: f64,
}

/// The full loaded-dataset report.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Workload id (`ingest-tsv`).
    pub id: &'static str,
    /// Load-phase measurements.
    pub ingest: IngestPhase,
    /// Per-algorithm serving modes over the loaded dataset, in
    /// `Algorithm::ALL` order. Byte-identity of every mode against the
    /// in-memory `rebuild` lifecycle is asserted during measurement.
    pub algorithms: Vec<QpsAlgoReport>,
}

/// Ingests the dump and measures the serving modes over it.
///
/// # Panics
///
/// Panics (inside [`measure_algorithms`]) if any serving mode diverges
/// from the in-memory rebuild path — the CI gate this bench exists for.
pub fn run_ingest_bench(cfg: &IngestBenchConfig) -> Result<IngestReport, IngestError> {
    eprintln!(
        "[ingest-tsv] loading {} + {}",
        cfg.data_tsv.display(),
        cfg.features_tsv.display()
    );
    let t0 = Instant::now();
    let loaded = ingest::ingest_files(&cfg.data_tsv, &cfg.features_tsv, &IngestOptions::default())?;
    let wall = t0.elapsed();
    let objects = loaded.objects();
    let ingest_phase = IngestPhase {
        objects,
        data_objects: loaded.dataset.data.len(),
        feature_objects: loaded.dataset.features.len(),
        vocab_terms: loaded.vocab.len(),
        lines: loaded.lines,
        skipped: loaded.skips.total(),
        wall_ms: wall.as_secs_f64() * 1e3,
        objects_per_sec: objects as f64 / wall.as_secs_f64().max(1e-12),
    };
    eprintln!(
        "[ingest-tsv] {} objects, {} terms in {:.0} ms ({:.0} objects/s)",
        ingest_phase.objects,
        ingest_phase.vocab_terms,
        ingest_phase.wall_ms,
        ingest_phase.objects_per_sec
    );

    // Queries are authored against the *ingested* vocabulary and bounds:
    // keyword ids from the interner's range, radii as fractions of the
    // loaded grid's cell side.
    let cell = loaded
        .dataset
        .bounds
        .width()
        .max(loaded.dataset.bounds.height())
        / cfg.grid as f64;
    let vocab_size = loaded.dataset.vocab_size.max(1);
    let defaults = StreamConfig::default();
    let mut stream = QueryStream::new(
        vocab_size,
        StreamConfig {
            radius_classes: [5.0, 10.0, 25.0]
                .iter()
                .map(|pct| cell * pct / 100.0)
                .collect(),
            hotspot_fraction: cfg.hotspot_fraction,
            hotspots: cfg.hotspots,
            seed: cfg.seed ^ 13,
            // A real dump can carry fewer distinct keywords than the
            // default per-query count; clamp so tiny vocabularies bench
            // instead of tripping the distinct-draw assertion.
            keywords_per_query: defaults.keywords_per_query.min(vocab_size),
            ..defaults
        },
    );
    let queries = stream.batch(cfg.queries);
    let algorithms = measure_algorithms(&ModeInputs {
        label: "ingest-tsv",
        dataset: &loaded.dataset,
        queries: &queries,
        bounds: loaded.dataset.bounds,
        workers: cfg.workers,
        grid: cfg.grid,
        batch: cfg.batch,
    });

    Ok(IngestReport {
        id: "ingest-tsv",
        ingest: ingest_phase,
        algorithms,
    })
}

/// Renders the report as the `BENCH_INGEST.json` document (the
/// `BENCH_PR3.json` shape plus an `"ingest"` section).
pub fn ingest_to_json(cfg: &IngestBenchConfig, report: &IngestReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"spq-bench ingest\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"data_tsv\": {:?}, \"features_tsv\": {:?}, \"seed\": {}, \"workers\": {}, \"queries\": {}, \"batch\": {}, \"grid\": {} }},\n",
        cfg.data_tsv.display().to_string(),
        cfg.features_tsv.display().to_string(),
        cfg.seed,
        cfg.workers,
        cfg.queries,
        cfg.batch,
        cfg.grid
    ));
    let i = &report.ingest;
    out.push_str(&format!(
        "  \"ingest\": {{ \"objects\": {}, \"data_objects\": {}, \"feature_objects\": {}, \"vocab_terms\": {}, \"lines\": {}, \"skipped\": {}, \"wall_ms\": {:.3}, \"objects_per_sec\": {:.0} }},\n",
        i.objects, i.data_objects, i.feature_objects, i.vocab_terms, i.lines, i.skipped, i.wall_ms, i.objects_per_sec
    ));
    // The measurement asserts mode/rebuild byte-identity; reaching the
    // report at all means it held.
    out.push_str("  \"modes_identical_to_rebuild\": true,\n");
    out.push_str(&format!(
        "  \"workloads\": [\n    {{\n      \"id\": \"{}\",\n      \"objects\": {},\n      \"algorithms\": [\n",
        report.id, i.objects
    ));
    out.push_str(&crate::qps::json_algorithms(&report.algorithms, "        "));
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use spq_data::ingest::{synthesize_dump, DumpConfig};

    #[test]
    fn loaded_dump_serves_identically_and_renders() {
        let dir = std::env::temp_dir();
        let d = dir.join(format!("spq-ingest-bench-{}-d.tsv", std::process::id()));
        let f = dir.join(format!("spq-ingest-bench-{}-f.tsv", std::process::id()));
        synthesize_dump(
            &DumpConfig {
                objects: 1200,
                seed: 5,
            },
            &d,
            &f,
        )
        .unwrap();
        let cfg = IngestBenchConfig {
            data_tsv: d.clone(),
            features_tsv: f.clone(),
            queries: 6,
            batch: 3,
            workers: 2,
            ..IngestBenchConfig::default()
        };
        // measure_algorithms asserts byte-identity of every serving mode
        // against the in-memory rebuild path, so completing is the
        // correctness part.
        let report = run_ingest_bench(&cfg).unwrap();
        assert_eq!(report.ingest.objects, 1200);
        assert!(report.ingest.vocab_terms > 0);
        assert!(report.ingest.objects_per_sec > 0.0);
        assert_eq!(report.ingest.skipped, 0);
        assert_eq!(report.algorithms.len(), 3);
        for a in &report.algorithms {
            assert_eq!(a.modes.len(), 4);
        }
        let json = ingest_to_json(&cfg, &report);
        assert!(json.contains("\"objects_per_sec\""));
        assert!(json.contains("\"modes_identical_to_rebuild\": true"));
        assert!(json.contains("\"ingest-tsv\""));
        for p in [&d, &f] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn tiny_vocabulary_dump_still_benches() {
        // A valid dump whose features carry fewer distinct keywords than
        // the default keywords-per-query must bench, not panic in the
        // query stream's distinct-keyword draw.
        let dir = std::env::temp_dir();
        let d = dir.join(format!("spq-ingest-tiny-{}-d.tsv", std::process::id()));
        let f = dir.join(format!("spq-ingest-tiny-{}-f.tsv", std::process::id()));
        std::fs::write(&d, "1\t0.2\t0.2\n2\t0.8\t0.8\n").unwrap();
        std::fs::write(&f, "1\t0.3\t0.3\tonly\n2\t0.7\t0.7\tonly\n").unwrap();
        let cfg = IngestBenchConfig {
            data_tsv: d.clone(),
            features_tsv: f.clone(),
            queries: 3,
            batch: 2,
            workers: 1,
            ..IngestBenchConfig::default()
        };
        let report = run_ingest_bench(&cfg).unwrap();
        assert_eq!(report.ingest.vocab_terms, 1);
        assert_eq!(report.algorithms.len(), 3);
        for p in [&d, &f] {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn missing_dump_is_an_error() {
        let cfg = IngestBenchConfig {
            data_tsv: PathBuf::from("/nonexistent/spq-data.tsv"),
            features_tsv: PathBuf::from("/nonexistent/spq-features.tsv"),
            ..IngestBenchConfig::default()
        };
        assert!(run_ingest_bench(&cfg).is_err());
    }
}
