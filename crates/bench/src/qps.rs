//! The throughput (QPS) harness behind the `fig_qps` benchmark and the
//! `BENCH_PR3.json` section of the `spq-bench` binary.
//!
//! The paper measures one query per MapReduce job; this harness measures
//! **serving**: a stream of queries (Zipf-skewed keywords, radius
//! classes, hotspot repetition — see `spq_data::QueryStream`) evaluated
//! over the fig7-uniform workload through four modes:
//!
//! | mode | lifecycle |
//! |---|---|
//! | `rebuild` | the pre-engine job-per-query path: every query re-copies the datasets into a fresh store and re-plans/re-routes the partition ([`SpqExecutor::run_splits`]) |
//! | `engine` | one [`QueryEngine`]: store, splits, keyword index and per-radius routing built once, queries evaluated sequentially |
//! | `engine-batch` | the engine's batched entry point: candidate features resolved through the build-once keyword index |
//! | `engine-serve` | the engine's concurrent entry point: independent single-threaded jobs on the worker pool |
//!
//! Every mode must return byte-identical `top_k` lists — the harness
//! asserts it — so the numbers compare pure lifecycle overhead. Reported
//! per mode: queries/second, p50/p99 per-query latency, total wall.

use crate::params::{scaled, DEFAULT_GRID_SYNTH, DEFAULT_SIZE_UN};
use spq_core::{
    Algorithm, QueryEngine, QueryExecutor, QueryRequest, RankedObject, SpqExecutor, SpqQuery,
};
use spq_data::{Dataset, DatasetGenerator, QueryStream, StreamConfig, UniformGen};
use spq_mapreduce::pool::run_tasks;
use spq_mapreduce::ClusterConfig;
use spq_spatial::Rect;
use std::time::{Duration, Instant};

/// Configuration of one QPS run.
#[derive(Debug, Clone)]
pub struct QpsConfig {
    /// Multiplier on the harness default dataset size.
    pub scale: f64,
    /// RNG seed for the dataset and the query stream.
    pub seed: u64,
    /// Worker threads: intra-query workers for `rebuild`/`engine`/
    /// `engine-batch`, inter-query workers for `engine-serve`.
    pub workers: usize,
    /// Length of the measured query stream.
    pub queries: usize,
    /// Batch size for `engine-batch`.
    pub batch: usize,
    /// Grid cells per axis.
    pub grid: u32,
    /// Fraction of the stream served from the hotspot pool.
    pub hotspot_fraction: f64,
    /// Number of hotspot queries in the pool.
    pub hotspots: usize,
}

impl Default for QpsConfig {
    fn default() -> Self {
        Self {
            scale: 0.02,
            seed: 2017,
            workers: ClusterConfig::auto().workers,
            queries: 64,
            batch: 16,
            grid: DEFAULT_GRID_SYNTH,
            hotspot_fraction: 0.5,
            hotspots: 8,
        }
    }
}

/// Throughput and latency of one serving mode.
#[derive(Debug, Clone, Copy)]
pub struct ModeStats {
    /// Mode id (`rebuild`, `engine`, `engine-batch`, `engine-serve`).
    pub id: &'static str,
    /// Queries per second over the whole stream.
    pub qps: f64,
    /// Median per-query latency, milliseconds. For `engine-batch` the
    /// per-query latency is the batch wall amortized over its queries.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency, milliseconds.
    pub p99_ms: f64,
    /// Total wall-clock of the stream, milliseconds.
    pub wall_ms: f64,
}

/// One algorithm's serving modes.
#[derive(Debug, Clone)]
pub struct QpsAlgoReport {
    /// The algorithm measured.
    pub algorithm: Algorithm,
    /// Per-mode stats, in the order rebuild / engine / engine-batch /
    /// engine-serve.
    pub modes: Vec<ModeStats>,
}

impl QpsAlgoReport {
    /// Looks a mode up by id.
    pub fn mode(&self, id: &str) -> Option<&ModeStats> {
        self.modes.iter().find(|m| m.id == id)
    }

    /// Throughput of `id` relative to the `rebuild` mode.
    pub fn qps_vs_rebuild(&self, id: &str) -> f64 {
        let rebuild = self.mode("rebuild").map_or(0.0, |m| m.qps);
        self.mode(id).map_or(0.0, |m| m.qps) / rebuild.max(1e-12)
    }
}

/// The full QPS report of one workload.
#[derive(Debug, Clone)]
pub struct QpsReport {
    /// Workload id.
    pub id: &'static str,
    /// Total objects in the generated dataset.
    pub objects: usize,
    /// Per-algorithm mode measurements, in [`Algorithm::ALL`] order.
    pub algorithms: Vec<QpsAlgoReport>,
}

pub(crate) fn mode_stats(id: &'static str, latencies: Vec<Duration>, wall: Duration) -> ModeStats {
    // Percentiles come from the shared stats module (linear interpolation
    // at rank (n−1)·p), the single definition every bench uses.
    let sample = criterion::stats::Sample::new(
        latencies
            .iter()
            .map(|d| d.as_secs_f64() * 1e3)
            .collect::<Vec<_>>(),
    );
    ModeStats {
        id,
        qps: sample.len() as f64 / wall.as_secs_f64().max(1e-12),
        p50_ms: sample.percentile(0.50),
        p99_ms: sample.percentile(0.99),
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

/// Inputs of one four-mode serving measurement — shared by the QPS
/// harness (generated datasets) and the ingest bench (loaded dumps).
#[derive(Debug)]
pub struct ModeInputs<'a> {
    /// Workload label for progress logging and assertion messages.
    pub label: &'a str,
    /// The dataset served.
    pub dataset: &'a Dataset,
    /// The measured query stream.
    pub queries: &'a [SpqQuery],
    /// Space bounds handed to the executor: the unit square for generated
    /// datasets, the loaded bounds for ingested dumps.
    pub bounds: Rect,
    /// Worker threads: intra-query for `rebuild`/`engine`/`engine-batch`,
    /// inter-query for `engine-serve`.
    pub workers: usize,
    /// Grid cells per axis.
    pub grid: u32,
    /// Batch size for `engine-batch`.
    pub batch: usize,
}

/// Measures all three algorithms through the four serving modes and
/// asserts every mode's `top_k` lists are byte-identical to the
/// `rebuild` reference (the job-per-query lifecycle over the same
/// objects) — so the numbers compare pure lifecycle overhead and a
/// loaded dump is proven to serve the same bytes as the in-memory path.
pub fn measure_algorithms(inputs: &ModeInputs<'_>) -> Vec<QpsAlgoReport> {
    let ModeInputs {
        label,
        dataset,
        queries,
        bounds,
        workers,
        grid,
        batch,
    } = *inputs;
    // Built once, shared by every rebuild-mode query — the rebuild cost
    // measured is the store copy + plan + routing, not dataset generation.
    let owned_splits = dataset.to_splits(8);
    let (shared, _) = dataset.to_shared_splits(8);

    Algorithm::ALL
        .iter()
        .map(|&algorithm| {
            eprintln!("[{label}] {algorithm}: {} queries x 4 modes", queries.len());
            let exec = SpqExecutor::new(bounds)
                .algorithm(algorithm)
                .grid_size(grid)
                .cluster(ClusterConfig::with_workers(workers));
            let engine = QueryEngine::new(exec.clone(), shared.clone());

            // -- rebuild: the job-per-query lifecycle ---------------------
            let mut latencies = Vec::with_capacity(queries.len());
            let mut reference: Vec<Vec<RankedObject>> = Vec::with_capacity(queries.len());
            let wall = Instant::now();
            for q in queries {
                let t0 = Instant::now();
                let result = exec.run_splits(&owned_splits, q).expect("rebuild job");
                latencies.push(t0.elapsed());
                reference.push(result.top_k);
            }
            let rebuild = mode_stats("rebuild", latencies, wall.elapsed());

            // -- engine: build-once state, sequential queries -------------
            let requests: Vec<QueryRequest> =
                queries.iter().cloned().map(QueryRequest::new).collect();
            let mut latencies = Vec::with_capacity(requests.len());
            let wall = Instant::now();
            for (request, expect) in requests.iter().zip(&reference) {
                let t0 = Instant::now();
                let response = engine.execute(request).expect("engine job");
                latencies.push(t0.elapsed());
                assert_eq!(&response.results, expect, "{algorithm}: engine diverged");
            }
            let engine_seq = mode_stats("engine", latencies, wall.elapsed());

            // -- engine-batch: keyword-index candidate pruning ------------
            let mut latencies = Vec::with_capacity(requests.len());
            let wall = Instant::now();
            for (chunk, expect) in requests
                .chunks(batch.max(1))
                .zip(reference.chunks(batch.max(1)))
            {
                let t0 = Instant::now();
                let responses = engine.execute_batch(chunk).expect("batch job");
                let amortized = t0.elapsed() / chunk.len() as u32;
                for (response, expect) in responses.iter().zip(expect) {
                    assert_eq!(&response.results, expect, "{algorithm}: batch diverged");
                    latencies.push(amortized);
                }
            }
            let engine_batch = mode_stats("engine-batch", latencies, wall.elapsed());

            // -- engine-serve: inter-query concurrency --------------------
            let wall = Instant::now();
            let outcomes = run_tasks(workers.max(1), queries.len(), |i| {
                let t0 = Instant::now();
                let result = engine.query_sequential(&queries[i]).expect("serve job");
                (t0.elapsed(), result.top_k)
            })
            .expect("serve pool");
            let wall = wall.elapsed();
            let mut latencies = Vec::with_capacity(queries.len());
            for (i, (latency, top_k)) in outcomes.into_iter().enumerate() {
                assert_eq!(top_k, reference[i], "{algorithm}: serve diverged");
                latencies.push(latency);
            }
            let engine_serve = mode_stats("engine-serve", latencies, wall);

            QpsAlgoReport {
                algorithm,
                modes: vec![rebuild, engine_seq, engine_batch, engine_serve],
            }
        })
        .collect()
}

/// Runs the QPS comparison on the fig7-uniform workload.
pub fn run_qps(cfg: &QpsConfig) -> QpsReport {
    let size = scaled(DEFAULT_SIZE_UN, cfg.scale);
    eprintln!("[fig7-uniform-qps] generating {size} objects");
    let dataset = UniformGen.generate(size, cfg.seed);
    let cell = 1.0 / cfg.grid as f64;
    let mut stream = QueryStream::new(
        dataset.vocab_size,
        StreamConfig {
            radius_classes: [5.0, 10.0, 25.0]
                .iter()
                .map(|pct| cell * pct / 100.0)
                .collect(),
            hotspot_fraction: cfg.hotspot_fraction,
            hotspots: cfg.hotspots,
            seed: cfg.seed ^ 13,
            ..StreamConfig::default()
        },
    );
    let queries = stream.batch(cfg.queries);
    let algorithms = measure_algorithms(&ModeInputs {
        label: "fig7-uniform-qps",
        dataset: &dataset,
        queries: &queries,
        bounds: Rect::unit(),
        workers: cfg.workers,
        grid: cfg.grid,
        batch: cfg.batch,
    });

    QpsReport {
        id: "fig7-uniform-qps",
        objects: dataset.total(),
        algorithms,
    }
}

fn json_mode(m: &ModeStats) -> String {
    format!(
        "{{ \"id\": \"{}\", \"qps\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}, \"wall_ms\": {:.3} }}",
        m.id, m.qps, m.p50_ms, m.p99_ms, m.wall_ms
    )
}

/// Renders the `"algorithms": [ ... ]` entries shared by the QPS and
/// ingest documents; `pad` is the indentation of each entry.
pub(crate) fn json_algorithms(algorithms: &[QpsAlgoReport], pad: &str) -> String {
    let mut out = String::new();
    for (ai, a) in algorithms.iter().enumerate() {
        out.push_str(&format!(
            "{pad}{{\n{pad}  \"name\": \"{}\",\n{pad}  \"modes\": [\n",
            a.algorithm.name()
        ));
        for (mi, m) in a.modes.iter().enumerate() {
            out.push_str(&format!(
                "{pad}    {}{}\n",
                json_mode(m),
                if mi + 1 < a.modes.len() { "," } else { "" }
            ));
        }
        out.push_str(&format!(
            "{pad}  ],\n{pad}  \"qps_vs_rebuild\": {{ \"engine\": {:.2}, \"engine-batch\": {:.2}, \"engine-serve\": {:.2} }}\n{pad}}}{}\n",
            a.qps_vs_rebuild("engine"),
            a.qps_vs_rebuild("engine-batch"),
            a.qps_vs_rebuild("engine-serve"),
            if ai + 1 < algorithms.len() { "," } else { "" }
        ));
    }
    out
}

/// Renders the report as the `BENCH_PR3.json` document.
pub fn qps_to_json(cfg: &QpsConfig, report: &QpsReport) -> String {
    let mut out = String::from("{\n  \"bench\": \"spq-bench qps\",\n");
    out.push_str(&format!(
        "  \"config\": {{ \"scale\": {}, \"seed\": {}, \"workers\": {}, \"queries\": {}, \"batch\": {}, \"grid\": {}, \"hotspot_fraction\": {}, \"hotspots\": {} }},\n",
        cfg.scale,
        cfg.seed,
        cfg.workers,
        cfg.queries,
        cfg.batch,
        cfg.grid,
        cfg.hotspot_fraction,
        cfg.hotspots
    ));
    out.push_str(&format!(
        "  \"workloads\": [\n    {{\n      \"id\": \"{}\",\n      \"objects\": {},\n      \"algorithms\": [\n",
        report.id, report.objects
    ));
    out.push_str(&json_algorithms(&report.algorithms, "        "));
    out.push_str("      ]\n    }\n  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_qps_run_measures_and_renders() {
        let cfg = QpsConfig {
            scale: 1e-9, // clamps to the 1k-object floor
            queries: 6,
            batch: 3,
            workers: 2,
            ..QpsConfig::default()
        };
        // run_qps asserts every mode's results are byte-identical to the
        // rebuild reference, so completing at all is the correctness part.
        let report = run_qps(&cfg);
        assert_eq!(report.algorithms.len(), 3);
        for a in &report.algorithms {
            assert_eq!(a.modes.len(), 4);
            for m in &a.modes {
                assert!(m.qps > 0.0, "{}: {} qps", a.algorithm, m.id);
                assert!(m.p50_ms <= m.p99_ms, "{}: {}", a.algorithm, m.id);
            }
            assert!(a.mode("engine-batch").is_some());
        }
        let json = qps_to_json(&cfg, &report);
        assert!(json.contains("\"fig7-uniform-qps\""));
        assert!(json.contains("\"qps_vs_rebuild\""));
    }

    #[test]
    fn percentiles_on_sorted_latencies() {
        let ms = |v: u64| Duration::from_millis(v);
        let stats = mode_stats("engine", vec![ms(4), ms(1), ms(2), ms(3)], ms(10));
        assert_eq!(stats.p50_ms, 2.5); // true midpoint of {1,2,3,4}
        assert!((stats.p99_ms - 3.97).abs() < 1e-9); // rank 2.97 between 3 and 4
        assert!((stats.qps - 400.0).abs() < 1e-9);
        // Odd-length sample: exact middle element.
        let stats = mode_stats("engine", vec![ms(3), ms(1), ms(2)], ms(10));
        assert_eq!(stats.p50_ms, 2.0);
    }
}
