//! The experimental parameters of Table 3, plus the harness' scaled-down
//! default dataset sizes.
//!
//! Table 3 (defaults in bold in the paper):
//!
//! | Parameter | Values |
//! |---|---|
//! | Datasets | real {TW, FL}, synthetic {UN, CL} |
//! | Query keywords `|q.W|` | 1, **3**, 5, 10 |
//! | Query radius (% of cell side) | 5%, **10%**, 25%, 50% |
//! | top-k | 5, **10**, 50, 100 |
//! | Grid size (FL, TW) | 35², **50²**, 75², 100² |
//! | Grid size (UN, CL) | 10², **15²**, 50², 100² |
//!
//! The figure x-axes extend some sweeps (radius up to 100% of the cell);
//! the sweep constants below follow the figures.

/// Sweeps of query keyword counts (Figures 5–7, 9 panel b).
pub const KEYWORD_SWEEP: [usize; 4] = [1, 3, 5, 10];
/// Default number of query keywords.
pub const DEFAULT_KEYWORDS: usize = 3;

/// Radius sweep for the real datasets, in % of the default cell side
/// (Figures 5c, 6c).
pub const RADIUS_PCT_SWEEP_REAL: [f64; 4] = [10.0, 25.0, 50.0, 100.0];
/// Radius sweep for the synthetic datasets (Figures 7c, 9c).
pub const RADIUS_PCT_SWEEP_SYNTH: [f64; 5] = [5.0, 10.0, 15.0, 50.0, 100.0];
/// Default radius, % of the default cell side.
pub const DEFAULT_RADIUS_PCT: f64 = 10.0;

/// top-k sweep (panel d of Figures 5–7, 9).
pub const TOPK_SWEEP: [usize; 4] = [5, 10, 50, 100];
/// Default k.
pub const DEFAULT_TOPK: usize = 10;

/// Grid sweep for the real datasets (Figures 5a, 6a).
pub const GRID_SWEEP_REAL: [u32; 4] = [35, 50, 75, 100];
/// Default grid for the real datasets.
pub const DEFAULT_GRID_REAL: u32 = 50;

/// Grid sweep for the synthetic datasets (Figures 7a, 9a).
pub const GRID_SWEEP_SYNTH: [u32; 4] = [10, 15, 50, 100];
/// Default grid for the synthetic datasets.
pub const DEFAULT_GRID_SYNTH: u32 = 15;

/// Harness default dataset sizes (total objects, data + features), chosen
/// so `experiments --all` completes on a workstation. The paper's sizes —
/// FL 40M, TW 80M, UN/CL 512M — are these defaults × ~100–256; the
/// `--scale` knob multiplies toward them.
pub const DEFAULT_SIZE_FL: usize = 400_000;
/// Harness default for the Twitter-like dataset.
pub const DEFAULT_SIZE_TW: usize = 800_000;
/// Harness default for the uniform synthetic dataset.
pub const DEFAULT_SIZE_UN: usize = 2_000_000;
/// Harness default for the clustered synthetic dataset.
pub const DEFAULT_SIZE_CL: usize = 1_000_000;

/// Figure 8 sweep: the paper's 64/128/256/512 million entries, as ratios
/// of [`DEFAULT_SIZE_UN`] (64M : 512M = 1 : 8).
pub const FIG8_SIZE_RATIOS: [f64; 4] = [0.125, 0.25, 0.5, 1.0];
/// The paper's x-axis labels for Figure 8 (millions of entries).
pub const FIG8_PAPER_SIZES: [u32; 4] = [64, 128, 256, 512];

/// Applies the global `--scale` multiplier to a dataset size, keeping at
/// least a workable minimum.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale) as usize).max(1_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_members_of_their_sweeps() {
        assert!(KEYWORD_SWEEP.contains(&DEFAULT_KEYWORDS));
        assert!(TOPK_SWEEP.contains(&DEFAULT_TOPK));
        assert!(GRID_SWEEP_REAL.contains(&DEFAULT_GRID_REAL));
        assert!(GRID_SWEEP_SYNTH.contains(&DEFAULT_GRID_SYNTH));
        assert!(RADIUS_PCT_SWEEP_REAL.contains(&DEFAULT_RADIUS_PCT));
        assert!(RADIUS_PCT_SWEEP_SYNTH.contains(&DEFAULT_RADIUS_PCT));
    }

    #[test]
    fn paper_size_ratios_match() {
        // TW is twice FL; UN/CL base is 512M in the paper.
        assert_eq!(DEFAULT_SIZE_TW, 2 * DEFAULT_SIZE_FL);
        assert_eq!(FIG8_SIZE_RATIOS.len(), FIG8_PAPER_SIZES.len());
        for w in FIG8_SIZE_RATIOS.windows(2) {
            assert!((w[1] / w[0] - 2.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaling_clamps_to_minimum() {
        assert_eq!(scaled(1_000_000, 0.5), 500_000);
        assert_eq!(scaled(1_000_000, 1e-9), 1_000);
    }
}
