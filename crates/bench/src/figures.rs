//! One entry point per figure of the paper's evaluation.

use crate::params::*;
use crate::report;
use crate::{measure_avg, BenchConfig, Measurement, Panel, PanelRow};

use spq_core::{theory, Algorithm, ObjectRef, SharedDataset, SpqExecutor, SpqQuery};
use spq_data::{
    ClusteredGen, DatasetGenerator, FlickrLike, KeywordSelection, QueryGenerator, TwitterLike,
    UniformGen,
};
use spq_mapreduce::ClusterConfig;
use spq_spatial::{Grid, Point, Rect};
use spq_text::KeywordSet;
use std::time::Duration;

/// All figure ids the harness understands.
pub const FIGURES: [&str; 9] = [
    "fig5", "fig6", "fig7", "fig8", "fig9", "df", "cellsize", "prune", "balance",
];

/// Output of one figure run: timing panels, or a free-form analysis text.
#[derive(Debug, Clone)]
pub enum FigureOutput {
    /// Chart-like panels (Figures 5–9).
    Panels(Vec<Panel>),
    /// Rendered analysis table (df / cellsize).
    Text(String),
}

/// Runs one figure by id.
///
/// # Panics
///
/// Panics on an unknown figure id; callers validate against [`FIGURES`].
pub fn run(figure: &str, cfg: &BenchConfig) -> FigureOutput {
    match figure {
        "fig5" => FigureOutput::Panels(four_panels(
            &FlickrLike,
            real_family("fig5", "Figure 5", "FL", DEFAULT_SIZE_FL),
            cfg,
        )),
        "fig6" => FigureOutput::Panels(four_panels(
            &TwitterLike,
            real_family("fig6", "Figure 6", "TW", DEFAULT_SIZE_TW),
            cfg,
        )),
        "fig7" => FigureOutput::Panels(four_panels(
            &UniformGen,
            synth_family(
                "fig7",
                "Figure 7",
                "UN",
                DEFAULT_SIZE_UN,
                Algorithm::ALL.to_vec(),
            ),
            cfg,
        )),
        "fig8" => FigureOutput::Panels(vec![fig8(cfg)]),
        "fig9" => FigureOutput::Panels(fig9(cfg)),
        "df" => FigureOutput::Text(duplication_report(cfg)),
        "cellsize" => FigureOutput::Text(cellsize_report(cfg)),
        "prune" => FigureOutput::Panels(vec![pruning_ablation(cfg)]),
        "balance" => FigureOutput::Panels(vec![balance_ablation(cfg)]),
        other => panic!("unknown figure {other:?} (expected one of {FIGURES:?})"),
    }
}

/// Sweep configuration shared by the four-panel figures.
struct Family {
    id: &'static str,
    figure: &'static str,
    dataset: &'static str,
    base_size: usize,
    default_grid: u32,
    grid_sweep: Vec<u32>,
    radius_sweep: Vec<f64>,
    algorithms: Vec<Algorithm>,
    selection: KeywordSelection,
}

fn real_family(
    id: &'static str,
    figure: &'static str,
    dataset: &'static str,
    base: usize,
) -> Family {
    Family {
        id,
        figure,
        dataset,
        base_size: base,
        default_grid: DEFAULT_GRID_REAL,
        grid_sweep: GRID_SWEEP_REAL.to_vec(),
        radius_sweep: RADIUS_PCT_SWEEP_REAL.to_vec(),
        algorithms: Algorithm::ALL.to_vec(),
        // Frequency-weighted query terms restore the paper-scale match
        // counts on the Zipf dictionaries (see KeywordSelection::Weighted).
        selection: KeywordSelection::Weighted { exponent: 1.0 },
    }
}

fn synth_family(
    id: &'static str,
    figure: &'static str,
    dataset: &'static str,
    base: usize,
    algorithms: Vec<Algorithm>,
) -> Family {
    Family {
        id,
        figure,
        dataset,
        base_size: base,
        default_grid: DEFAULT_GRID_SYNTH,
        grid_sweep: GRID_SWEEP_SYNTH.to_vec(),
        radius_sweep: RADIUS_PCT_SWEEP_SYNTH.to_vec(),
        algorithms,
        selection: KeywordSelection::Random,
    }
}

fn executor(grid: u32, cfg: &BenchConfig, algorithm: Algorithm) -> SpqExecutor {
    SpqExecutor::new(Rect::unit())
        .grid_size(grid)
        .algorithm(algorithm)
        .cluster(ClusterConfig::with_workers(cfg.workers))
}

fn sweep_point(
    algorithms: &[Algorithm],
    grid: u32,
    cfg: &BenchConfig,
    dataset: &SharedDataset,
    splits: &[Vec<ObjectRef>],
    queries: &[SpqQuery],
) -> Vec<Measurement> {
    algorithms
        .iter()
        .map(|&a| {
            measure_avg(
                &executor(grid, cfg, a),
                dataset,
                splits,
                queries,
                cfg.sim_slots,
            )
        })
        .collect()
}

/// Panels (a)–(d): grid size, query keywords, query radius, top-k.
fn four_panels(gen: &dyn DatasetGenerator, family: Family, cfg: &BenchConfig) -> Vec<Panel> {
    let size = scaled(family.base_size, cfg.scale);
    eprintln!(
        "[{}] generating {} dataset: {} objects",
        family.id, family.dataset, size
    );
    let dataset = gen.generate(size, cfg.seed);
    let (shared, splits) = dataset.to_shared_splits(cfg.workers.max(4));
    let default_cell = 1.0 / family.default_grid as f64;
    let default_radius = default_cell * DEFAULT_RADIUS_PCT / 100.0;

    // One *nested* keyword pool per averaged query: prefixes of the same
    // draw serve every sweep point, so rows differ only in the swept
    // parameter instead of in freshly drawn (wildly varying) keyword
    // sets.
    let mut qgen = QueryGenerator::new(dataset.vocab_size, family.selection, cfg.seed ^ 0x5151);
    let max_kw = *KEYWORD_SWEEP.iter().max().expect("non-empty sweep");
    let base_terms: Vec<Vec<spq_text::Term>> = (0..cfg.queries_per_point)
        .map(|_| qgen.generate_terms(max_kw))
        .collect();
    let queries_with = |kw: usize, k: usize, radius: f64| -> Vec<SpqQuery> {
        base_terms
            .iter()
            .map(|t| SpqQuery::new(k, radius, KeywordSet::new(t[..kw].to_vec())))
            .collect()
    };
    let mut panels = Vec::new();

    // (a) varying grid size.
    {
        let queries = queries_with(DEFAULT_KEYWORDS, DEFAULT_TOPK, default_radius);
        let rows = family
            .grid_sweep
            .iter()
            .map(|&n| PanelRow {
                x: format!("{n}x{n}"),
                cells: sweep_point(&family.algorithms, n, cfg, &shared, &splits, &queries),
            })
            .collect();
        panels.push(Panel {
            id: format!("{}a", family.id),
            title: format!(
                "{}(a) — {}: varying grid size (|q.W|={DEFAULT_KEYWORDS}, r={DEFAULT_RADIUS_PCT}% of cell, k={DEFAULT_TOPK})",
                family.figure, family.dataset
            ),
            x_label: "grid".to_owned(),
            algorithms: family.algorithms.clone(),
            rows,
        });
    }

    // (b) varying number of query keywords.
    {
        let rows = KEYWORD_SWEEP
            .iter()
            .map(|&kw| {
                let queries = queries_with(kw, DEFAULT_TOPK, default_radius);
                PanelRow {
                    x: kw.to_string(),
                    cells: sweep_point(
                        &family.algorithms,
                        family.default_grid,
                        cfg,
                        &shared,
                        &splits,
                        &queries,
                    ),
                }
            })
            .collect();
        panels.push(Panel {
            id: format!("{}b", family.id),
            title: format!(
                "{}(b) — {}: varying query keywords (grid {g}x{g}, r={DEFAULT_RADIUS_PCT}%, k={DEFAULT_TOPK})",
                family.figure,
                family.dataset,
                g = family.default_grid,
            ),
            x_label: "keywords".to_owned(),
            algorithms: family.algorithms.clone(),
            rows,
        });
    }

    // (c) varying query radius (% of the default cell side).
    {
        let rows = family
            .radius_sweep
            .iter()
            .map(|&pct| {
                let r = default_cell * pct / 100.0;
                let queries = queries_with(DEFAULT_KEYWORDS, DEFAULT_TOPK, r);
                PanelRow {
                    x: format!("{pct}%"),
                    cells: sweep_point(
                        &family.algorithms,
                        family.default_grid,
                        cfg,
                        &shared,
                        &splits,
                        &queries,
                    ),
                }
            })
            .collect();
        panels.push(Panel {
            id: format!("{}c", family.id),
            title: format!(
                "{}(c) — {}: varying query radius (grid default, |q.W|={DEFAULT_KEYWORDS}, k={DEFAULT_TOPK})",
                family.figure, family.dataset
            ),
            x_label: "radius".to_owned(),
            algorithms: family.algorithms.clone(),
            rows,
        });
    }

    // (d) varying k.
    {
        let rows = TOPK_SWEEP
            .iter()
            .map(|&k| {
                let queries = queries_with(DEFAULT_KEYWORDS, k, default_radius);
                PanelRow {
                    x: k.to_string(),
                    cells: sweep_point(
                        &family.algorithms,
                        family.default_grid,
                        cfg,
                        &shared,
                        &splits,
                        &queries,
                    ),
                }
            })
            .collect();
        panels.push(Panel {
            id: format!("{}d", family.id),
            title: format!(
                "{}(d) — {}: varying top-k (grid default, |q.W|={DEFAULT_KEYWORDS}, r={DEFAULT_RADIUS_PCT}%)",
                family.figure, family.dataset
            ),
            x_label: "k".to_owned(),
            algorithms: family.algorithms.clone(),
            rows,
        });
    }
    panels
}

/// Figure 8: scalability with dataset size (UN, all algorithms).
fn fig8(cfg: &BenchConfig) -> Panel {
    let max_size = scaled(DEFAULT_SIZE_UN, cfg.scale);
    eprintln!("[fig8] generating UN dataset: {max_size} objects");
    let full = UniformGen.generate(max_size, cfg.seed);
    let default_cell = 1.0 / DEFAULT_GRID_SYNTH as f64;
    let default_radius = default_cell * DEFAULT_RADIUS_PCT / 100.0;
    let mut qgen =
        QueryGenerator::new(full.vocab_size, KeywordSelection::Random, cfg.seed ^ 0x5151);
    let queries = qgen.batch(
        cfg.queries_per_point,
        DEFAULT_TOPK,
        default_radius,
        DEFAULT_KEYWORDS,
    );

    let rows = FIG8_SIZE_RATIOS
        .iter()
        .zip(FIG8_PAPER_SIZES)
        .map(|(&ratio, label)| {
            let n_data = (full.data.len() as f64 * ratio) as usize;
            let n_feat = (full.features.len() as f64 * ratio) as usize;
            let subset = full.truncated(n_data, n_feat);
            let (shared, splits) = subset.to_shared_splits(cfg.workers.max(4));
            PanelRow {
                x: format!("{label}M*"),
                cells: sweep_point(
                    &Algorithm::ALL,
                    DEFAULT_GRID_SYNTH,
                    cfg,
                    &shared,
                    &splits,
                    &queries,
                ),
            }
        })
        .collect();
    Panel {
        id: "fig8".to_owned(),
        title: format!(
            "Figure 8 — scalability with dataset size (UN; * = paper's millions, harness runs {} objects at the top size)",
            max_size
        ),
        x_label: "size".to_owned(),
        algorithms: Algorithm::ALL.to_vec(),
        rows,
    }
}

/// Figure 9: the clustered dataset. Panels (a)–(d) run the two
/// early-termination algorithms (the paper omits pSPQ — it needed ~48h);
/// panel (e) demonstrates the pSPQ blow-up at 1/8 scale against UN.
fn fig9(cfg: &BenchConfig) -> Vec<Panel> {
    let early = vec![Algorithm::ESpqLen, Algorithm::ESpqSco];
    let mut panels = four_panels(
        &ClusteredGen,
        synth_family("fig9", "Figure 9", "CL", DEFAULT_SIZE_CL, early),
        cfg,
    );

    // Panel (e): why pSPQ is absent from the panels above — at equal
    // size, the clustered distribution funnels whole clusters into single
    // reducers, and pSPQ's O(|Oi|·|Fi|) worst cell dominates the job.
    let size = scaled(DEFAULT_SIZE_CL, cfg.scale);
    let default_cell = 1.0 / DEFAULT_GRID_SYNTH as f64;
    let default_radius = default_cell * DEFAULT_RADIUS_PCT / 100.0;
    let mut rows = Vec::new();
    for (name, dataset) in [
        ("UN", UniformGen.generate(size, cfg.seed)),
        ("CL", ClusteredGen.generate(size, cfg.seed)),
    ] {
        let mut qgen = QueryGenerator::new(
            dataset.vocab_size,
            KeywordSelection::Random,
            cfg.seed ^ 0x5151,
        );
        let queries = qgen.batch(
            cfg.queries_per_point,
            DEFAULT_TOPK,
            default_radius,
            DEFAULT_KEYWORDS,
        );
        let (shared, splits) = dataset.to_shared_splits(cfg.workers.max(4));
        rows.push(PanelRow {
            x: name.to_owned(),
            cells: sweep_point(
                &Algorithm::ALL,
                DEFAULT_GRID_SYNTH,
                cfg,
                &shared,
                &splits,
                &queries,
            ),
        });
    }
    panels.push(Panel {
        id: "fig9e".to_owned(),
        title: format!(
            "Figure 9(e) — pSPQ on clustered vs uniform data ({} objects; the paper reports ~48h on CL at 512M)",
            size
        ),
        x_label: "dataset".to_owned(),
        algorithms: Algorithm::ALL.to_vec(),
        rows,
    });
    panels
}

/// Ablation of the partitioning scheme on the skew-hostile CL dataset:
/// the paper's uniform grid vs the adaptive quadtree extension with the
/// same cell budget. Time should drop and — decisively — the busiest
/// reducer should shrink (the reduce_skew CSV column).
pub fn balance_ablation(cfg: &BenchConfig) -> Panel {
    use spq_core::LoadBalancing;
    let size = scaled(DEFAULT_SIZE_CL, cfg.scale);
    eprintln!("[balance] generating CL dataset: {size} objects");
    let dataset = ClusteredGen.generate(size, cfg.seed);
    let (shared, splits) = dataset.to_shared_splits(cfg.workers.max(4));
    let default_cell = 1.0 / DEFAULT_GRID_SYNTH as f64;
    let mut qgen = QueryGenerator::new(
        dataset.vocab_size,
        KeywordSelection::Random,
        cfg.seed ^ 0x5151,
    );
    let queries = qgen.batch(
        cfg.queries_per_point,
        DEFAULT_TOPK,
        default_cell * DEFAULT_RADIUS_PCT / 100.0,
        DEFAULT_KEYWORDS,
    );
    let rows = [
        ("uniform grid", LoadBalancing::UniformGrid),
        (
            "quadtree",
            LoadBalancing::AdaptiveQuadtree { sample_size: 8192 },
        ),
    ]
    .into_iter()
    .map(|(label, balancing)| PanelRow {
        x: label.to_owned(),
        cells: Algorithm::ALL
            .iter()
            .map(|&a| {
                let exec = executor(DEFAULT_GRID_SYNTH, cfg, a).load_balancing(balancing);
                crate::measure_avg(&exec, &shared, &splits, &queries, cfg.sim_slots)
            })
            .collect(),
    })
    .collect();
    Panel {
        id: "balance".to_owned(),
        title: format!(
            "Ablation — uniform grid vs adaptive quadtree on CL ({} cells budget, |q.W|={DEFAULT_KEYWORDS}, k={DEFAULT_TOPK})",
            DEFAULT_GRID_SYNTH as usize * DEFAULT_GRID_SYNTH as usize
        ),
        x_label: "partition".to_owned(),
        algorithms: Algorithm::ALL.to_vec(),
        rows,
    }
}

/// Ablation of the map-side keyword pruning rule (Algorithm 1 line 9):
/// the same FL-like workload with pruning on vs off, per algorithm. The
/// paper argues the rule "can significantly limit the number of feature
/// objects that need to be sent to the Reduce phase" — this panel
/// quantifies it (watch the shuffle column).
pub fn pruning_ablation(cfg: &BenchConfig) -> Panel {
    let size = scaled(DEFAULT_SIZE_FL, cfg.scale);
    eprintln!("[prune] generating FL dataset: {size} objects");
    let dataset = FlickrLike.generate(size, cfg.seed);
    let (shared, splits) = dataset.to_shared_splits(cfg.workers.max(4));
    let default_cell = 1.0 / DEFAULT_GRID_REAL as f64;
    let mut qgen = QueryGenerator::new(
        dataset.vocab_size,
        KeywordSelection::Weighted { exponent: 1.0 },
        cfg.seed ^ 0x5151,
    );
    let queries = qgen.batch(
        cfg.queries_per_point,
        DEFAULT_TOPK,
        default_cell * DEFAULT_RADIUS_PCT / 100.0,
        DEFAULT_KEYWORDS,
    );
    let rows = [("pruning on", true), ("pruning off", false)]
        .into_iter()
        .map(|(label, prune)| PanelRow {
            x: label.to_owned(),
            cells: Algorithm::ALL
                .iter()
                .map(|&a| {
                    let exec = executor(DEFAULT_GRID_REAL, cfg, a).keyword_pruning(prune);
                    crate::measure_avg(&exec, &shared, &splits, &queries, cfg.sim_slots)
                })
                .collect(),
        })
        .collect();
    Panel {
        id: "prune".to_owned(),
        title: format!(
            "Ablation — map-side keyword pruning (FL, grid {g}x{g}, |q.W|={DEFAULT_KEYWORDS}, k={DEFAULT_TOPK})",
            g = DEFAULT_GRID_REAL
        ),
        x_label: "variant".to_owned(),
        algorithms: Algorithm::ALL.to_vec(),
        rows,
    }
}

/// Section 6.2: Monte-Carlo duplication factor vs the closed form, as
/// `(radius % of cell, measured df, predicted df)` rows.
///
/// Points are sampled over the grid's *interior* cells: the closed form
/// models an unbounded tiling, while cells on the data-space boundary
/// have clipped neighbourhoods (their features duplicate less). The full-
/// space deficit is exactly the boundary-cell fraction and is reported by
/// the `experiments --figure df` output of real runs via the
/// `map.feature_duplicates` counter.
pub fn duplication_table(cfg: &BenchConfig) -> Vec<(f64, f64, f64)> {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let grid = Grid::square(Rect::unit(), DEFAULT_GRID_SYNTH);
    let cell = grid.cell_width();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let n = scaled(200_000, cfg.scale);
    let interior = |v: f64| cell + v * (1.0 - 2.0 * cell);
    let points: Vec<Point> = (0..n)
        .map(|_| Point::new(interior(rng.gen()), interior(rng.gen())))
        .collect();

    [5.0, 10.0, 25.0, 50.0]
        .into_iter()
        .map(|pct| {
            let r = cell * pct / 100.0;
            let mut emissions = 0u64;
            for p in &points {
                emissions += 1; // own cell
                grid.for_each_duplication_target(p, r, |_| emissions += 1);
            }
            let measured = emissions as f64 / n as f64;
            (pct, measured, theory::duplication_factor(cell, r))
        })
        .collect()
}

fn duplication_report(cfg: &BenchConfig) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "Section 6.2 — duplication factor df = πr²/a² + 4r/a + 1 (grid {0}x{0}, uniform features)\n",
        DEFAULT_GRID_SYNTH
    ));
    out.push_str(&format!(
        "{:<12}{:>14}{:>14}{:>12}\n",
        "r (% cell)", "measured df", "predicted df", "error"
    ));
    let mut csv = String::from("radius_pct,measured_df,predicted_df\n");
    for (pct, measured, predicted) in duplication_table(cfg) {
        let err = (measured - predicted).abs() / predicted;
        out.push_str(&format!(
            "{:<12}{:>14.4}{:>14.4}{:>11.2}%\n",
            format!("{pct}%"),
            measured,
            predicted,
            err * 100.0
        ));
        csv.push_str(&format!("{pct},{measured:.6},{predicted:.6}\n"));
    }
    write_text_csv(cfg, "df", &csv);
    out
}

/// Section 6.3: measured pSPQ reduce cost vs the `df·a⁴` model, as
/// `(grid n, mean reduce-task duration, model value)` rows.
pub fn cellsize_table(cfg: &BenchConfig) -> Vec<(u32, Duration, f64)> {
    let size = scaled(DEFAULT_SIZE_UN / 4, cfg.scale);
    let dataset = UniformGen.generate(size, cfg.seed);
    let (shared, splits) = dataset.to_shared_splits(cfg.workers.max(4));
    // Fixed absolute radius, valid (r <= a/2) for the finest grid swept.
    let r = 0.004;
    let mut qgen = QueryGenerator::new(
        dataset.vocab_size,
        KeywordSelection::Random,
        cfg.seed ^ 0x5151,
    );
    let queries = qgen.batch(cfg.queries_per_point, DEFAULT_TOPK, r, DEFAULT_KEYWORDS);

    [10u32, 15, 25, 50, 100]
        .into_iter()
        .map(|n| {
            let exec = executor(n, cfg, Algorithm::PSpq);
            let mut total = Duration::ZERO;
            for q in &queries {
                let res = exec.run_shared(&shared, &splits, q).expect("cellsize job");
                let sum: Duration = res.stats.reduce_tasks.iter().map(|t| t.duration).sum();
                total += sum / res.stats.reduce_tasks.len().max(1) as u32;
            }
            let mean = total / queries.len().max(1) as u32;
            (n, mean, theory::cost_indicator(1.0 / n as f64, r))
        })
        .collect()
}

fn cellsize_report(cfg: &BenchConfig) -> String {
    let rows = cellsize_table(cfg);
    let mut out = String::new();
    out.push_str(
        "Section 6.3 — per-reducer cost vs cell size (pSPQ on UN, fixed radius; model df·a⁴)\n",
    );
    out.push_str(&format!(
        "{:<10}{:>20}{:>16}{:>18}\n",
        "grid", "mean reduce task", "model df·a⁴", "model (norm.)"
    ));
    let norm = rows.first().map_or(1.0, |r| r.2);
    let mut csv = String::from("grid,mean_reduce_us,model\n");
    for (n, mean, model) in &rows {
        out.push_str(&format!(
            "{:<10}{:>20?}{:>16.3e}{:>18.4}\n",
            format!("{n}x{n}"),
            mean,
            model,
            model / norm
        ));
        csv.push_str(&format!("{n},{},{model:.6e}\n", mean.as_micros()));
    }
    out.push_str("(both columns must fall as the grid gets finer)\n");
    write_text_csv(cfg, "cellsize", &csv);
    out
}

fn write_text_csv(cfg: &BenchConfig, id: &str, content: &str) {
    if let Some(dir) = &cfg.out_dir {
        if std::fs::create_dir_all(dir).is_ok() {
            let _ = std::fs::write(dir.join(format!("{id}.csv")), content);
        }
    }
}

/// Runs a figure and renders everything to one string (used by the binary
/// and by smoke tests), writing CSVs as configured.
pub fn run_and_render(figure: &str, cfg: &BenchConfig) -> String {
    match run(figure, cfg) {
        FigureOutput::Panels(panels) => {
            let mut out = String::new();
            for p in &panels {
                report::write_csv(p, cfg).expect("csv write");
                out.push_str(&report::render(p));
                out.push('\n');
            }
            out
        }
        FigureOutput::Text(t) => t,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> BenchConfig {
        BenchConfig {
            scale: 0.004, // ~1.6-8k objects per dataset
            seed: 7,
            workers: 4,
            queries_per_point: 1,
            sim_slots: 16,
            out_dir: None,
        }
    }

    #[test]
    fn duplication_table_matches_theory() {
        let rows = duplication_table(&tiny_cfg());
        assert_eq!(rows.len(), 4);
        for (pct, measured, predicted) in rows {
            let err = (measured - predicted).abs() / predicted;
            assert!(err < 0.05, "{pct}%: measured {measured} vs {predicted}");
        }
    }

    #[test]
    fn fig8_panel_shapes() {
        let panel = fig8(&tiny_cfg());
        assert_eq!(panel.rows.len(), 4);
        assert_eq!(panel.algorithms.len(), 3);
        for row in &panel.rows {
            assert_eq!(row.cells.len(), 3);
            // Every algorithm returns the same number of results.
            let n = row.cells[0].results;
            assert!(row.cells.iter().all(|c| c.results == n), "row {}", row.x);
        }
    }

    #[test]
    fn fig9_omits_pspq_from_main_panels() {
        let panels = fig9(&tiny_cfg());
        assert_eq!(panels.len(), 5);
        for p in &panels[..4] {
            assert!(!p.algorithms.contains(&Algorithm::PSpq), "{}", p.id);
        }
        assert!(panels[4].algorithms.contains(&Algorithm::PSpq));
    }

    #[test]
    fn run_and_render_smoke_fig7() {
        let out = run_and_render("fig7", &tiny_cfg());
        assert!(out.contains("Figure 7(a)"));
        assert!(out.contains("eSPQsco"));
        assert!(out.contains("15x15"));
    }

    #[test]
    fn cellsize_model_is_monotone() {
        let rows = cellsize_table(&BenchConfig {
            scale: 0.01,
            ..tiny_cfg()
        });
        for w in rows.windows(2) {
            assert!(w[1].2 < w[0].2, "model must fall with finer grids");
        }
    }

    #[test]
    #[should_panic]
    fn unknown_figure_panics() {
        let _ = run("fig99", &tiny_cfg());
    }
}
