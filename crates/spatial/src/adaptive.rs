//! An adaptive (quadtree) space partitioner — the load-balancing
//! extension for skewed data.
//!
//! The paper's uniform grid assigns each cell to one reducer; on the
//! clustered CL dataset "it is hard to fairly assign the objects to
//! Reducers, thus typically some Reducers are overburdened" (Section
//! 7.2.4). This module provides the classic remedy: partition the space
//! by a quadtree built over a *sample* of the data locations, so that
//! dense regions get many small cells and sparse regions few large ones,
//! while Lemma 1 continues to hold verbatim (leaves tile the space, and a
//! feature object is duplicated into every other leaf within `MINDIST <=
//! r`). This mirrors how SpatialHadoop and friends size their partitions
//! from a sample, and is evaluated by the `balance` figure of the
//! benchmark harness.

use crate::grid::CellId;
use crate::point::Point;
use crate::rect::Rect;
use std::collections::BinaryHeap;

/// Arena node of the quadtree.
#[derive(Debug, Clone)]
enum Node {
    /// Four children in quadrant order (SW, SE, NW, NE).
    Internal { children: [u32; 4] },
    /// A leaf owning a partition cell.
    Leaf { cell: CellId },
}

/// A quadtree-based partition of a bounded 2-D space into leaf cells.
#[derive(Debug, Clone)]
pub struct AdaptiveGrid {
    bounds: Rect,
    nodes: Vec<Node>,
    rects: Vec<Rect>,
    /// Leaf rectangles by cell id (dense, `0..num_cells`).
    cells: Vec<Rect>,
}

/// Max tree depth — cells no finer than 2^-12 of the extent.
const MAX_DEPTH: u32 = 12;

impl AdaptiveGrid {
    /// Builds a partition with at most `max_cells` leaves by repeatedly
    /// quartering the leaf containing the most sample points.
    ///
    /// The sample stands in for the full dataset (a driver would obtain
    /// it from a pre-scan or an existing histogram); an empty sample
    /// yields the single-cell partition.
    ///
    /// # Panics
    ///
    /// Panics if `max_cells == 0` or the bounds are degenerate.
    pub fn build(bounds: Rect, sample: &[Point], max_cells: usize) -> Self {
        Self::build_with_min_cell(bounds, sample, max_cells, 0.0)
    }

    /// [`build`](AdaptiveGrid::build) with a lower bound on the leaf side
    /// length. Section 4.1 of the paper requires cell sides of at least
    /// the query radius `r` — otherwise Lemma-1 duplication explodes
    /// (each feature fans out to `O((r/α)²)` cells). Pass the query
    /// radius here so dense regions stop splitting once leaves reach it.
    pub fn build_with_min_cell(
        bounds: Rect,
        sample: &[Point],
        max_cells: usize,
        min_cell: f64,
    ) -> Self {
        assert!(max_cells > 0, "need at least one cell");
        assert!(
            min_cell >= 0.0 && min_cell.is_finite(),
            "min cell side must be finite and >= 0"
        );
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "partition bounds must have positive area"
        );
        let mut tree = Self {
            bounds,
            nodes: vec![Node::Leaf { cell: CellId(0) }],
            rects: vec![bounds],
            cells: vec![bounds],
        };

        // Max-heap of splittable leaves: (sample count, node index, depth,
        // point indices into `sample`).
        let mut heap: BinaryHeap<(usize, usize, u32, Vec<u32>)> = BinaryHeap::new();
        let all: Vec<u32> = (0..sample.len() as u32).collect();
        heap.push((sample.len(), 0, 0, all));
        let mut leaves = 1usize;

        while leaves + 3 <= max_cells {
            let Some((count, node_idx, depth, points)) = heap.pop() else {
                break;
            };
            // Nothing left worth splitting: every remaining leaf holds at
            // most one sample point or is at max depth.
            if count <= 1 || depth >= MAX_DEPTH {
                break;
            }
            let rect = tree.rects[node_idx];
            // Children would undercut the query radius: leave this leaf
            // alone and keep splitting elsewhere.
            if rect.width() / 2.0 < min_cell || rect.height() / 2.0 < min_cell {
                continue;
            }
            let center = rect.center();
            let quads = [
                Rect::new(rect.min(), center),
                Rect::from_coords(center.x, rect.min().y, rect.max().x, center.y),
                Rect::from_coords(rect.min().x, center.y, center.x, rect.max().y),
                Rect::new(center, rect.max()),
            ];
            let mut buckets: [Vec<u32>; 4] = Default::default();
            for &pi in &points {
                let p = &sample[pi as usize];
                let q = quadrant_of(&center, p);
                buckets[q].push(pi);
            }
            let mut children = [0u32; 4];
            for (q, quad_rect) in quads.into_iter().enumerate() {
                let child = tree.nodes.len() as u32;
                children[q] = child;
                tree.nodes.push(Node::Leaf { cell: CellId(0) }); // cell set later
                tree.rects.push(quad_rect);
                heap.push((
                    buckets[q].len(),
                    child as usize,
                    depth + 1,
                    std::mem::take(&mut buckets[q]),
                ));
            }
            tree.nodes[node_idx] = Node::Internal { children };
            leaves += 3;
        }

        // Assign dense cell ids to the leaves in node order.
        tree.cells.clear();
        for i in 0..tree.nodes.len() {
            if let Node::Leaf { .. } = tree.nodes[i] {
                let cell = CellId(tree.cells.len() as u32);
                tree.cells.push(tree.rects[i]);
                tree.nodes[i] = Node::Leaf { cell };
            }
        }
        tree
    }

    /// The partitioned bounds.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Number of leaf cells.
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// The rectangle of a leaf cell.
    pub fn cell_rect(&self, c: CellId) -> Rect {
        self.cells[c.index()]
    }

    /// The leaf enclosing a point (points outside the bounds are clamped,
    /// matching [`crate::Grid::cell_of`]).
    pub fn cell_of(&self, p: &Point) -> CellId {
        let clamped = Point::new(
            p.x.clamp(self.bounds.min().x, self.bounds.max().x),
            p.y.clamp(self.bounds.min().y, self.bounds.max().y),
        );
        let mut node = 0usize;
        loop {
            match &self.nodes[node] {
                Node::Leaf { cell } => return *cell,
                Node::Internal { children } => {
                    let center = self.rects[node].center();
                    node = children[quadrant_of(&center, &clamped)] as usize;
                }
            }
        }
    }

    /// Calls `f` for every *other* leaf with `MINDIST(p, leaf) <= r` —
    /// the Lemma-1 duplication targets under the adaptive partition.
    pub fn for_each_duplication_target<F: FnMut(CellId)>(&self, p: &Point, r: f64, mut f: F) {
        assert!(r >= 0.0 && r.is_finite(), "radius must be finite and >= 0");
        let own = self.cell_of(p);
        let r_sq = r * r * (1.0 + 1e-12);
        let mut stack = vec![0usize];
        while let Some(node) = stack.pop() {
            if self.rects[node].mindist_sq(p) > r_sq {
                continue;
            }
            match &self.nodes[node] {
                Node::Leaf { cell } => {
                    if *cell != own {
                        f(*cell);
                    }
                }
                Node::Internal { children } => {
                    stack.extend(children.iter().map(|&c| c as usize));
                }
            }
        }
    }
}

/// Quadrant index for a point relative to a center (SW=0, SE=1, NW=2,
/// NE=3; boundary points go to the higher quadrant, matching the uniform
/// grid's half-open cells).
#[inline]
fn quadrant_of(center: &Point, p: &Point) -> usize {
    (usize::from(p.x >= center.x)) | (usize::from(p.y >= center.y) << 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn clustered_sample(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|i| {
                if i % 10 == 0 {
                    Point::new(rng.gen(), rng.gen())
                } else {
                    // Dense blob near (0.2, 0.2).
                    Point::new(
                        (0.2 + rng.gen::<f64>() * 0.05).clamp(0.0, 1.0),
                        (0.2 + rng.gen::<f64>() * 0.05).clamp(0.0, 1.0),
                    )
                }
            })
            .collect()
    }

    #[test]
    fn empty_sample_is_single_cell() {
        let t = AdaptiveGrid::build(Rect::unit(), &[], 64);
        assert_eq!(t.num_cells(), 1);
        assert_eq!(t.cell_of(&Point::new(0.3, 0.9)), CellId(0));
        assert!(t
            .duplication_targets_vec(&Point::new(0.5, 0.5), 1.0)
            .is_empty());
    }

    impl AdaptiveGrid {
        fn duplication_targets_vec(&self, p: &Point, r: f64) -> Vec<CellId> {
            let mut v = Vec::new();
            self.for_each_duplication_target(p, r, |c| v.push(c));
            v.sort();
            v
        }
    }

    #[test]
    fn respects_max_cells() {
        let sample = clustered_sample(5000, 1);
        for max in [1, 4, 16, 100, 225] {
            let t = AdaptiveGrid::build(Rect::unit(), &sample, max);
            assert!(t.num_cells() <= max, "max {max}: got {}", t.num_cells());
            assert!(t.num_cells() >= max.saturating_sub(3).max(1) || max < 4);
        }
    }

    #[test]
    fn leaves_tile_the_space() {
        let sample = clustered_sample(2000, 2);
        let t = AdaptiveGrid::build(Rect::unit(), &sample, 64);
        // Total leaf area equals the bounds area.
        let total: f64 = (0..t.num_cells())
            .map(|i| t.cell_rect(CellId(i as u32)).area())
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "area {total}");
        // Every probe point lands in a leaf whose rect contains it.
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..500 {
            let p = Point::new(rng.gen(), rng.gen());
            let c = t.cell_of(&p);
            assert!(t.cell_rect(c).contains(&p), "{p} not in its leaf");
        }
    }

    #[test]
    fn dense_regions_get_smaller_cells() {
        let sample = clustered_sample(5000, 4);
        let t = AdaptiveGrid::build(Rect::unit(), &sample, 64);
        let dense = t.cell_rect(t.cell_of(&Point::new(0.22, 0.22)));
        let sparse = t.cell_rect(t.cell_of(&Point::new(0.8, 0.8)));
        assert!(
            dense.area() * 8.0 < sparse.area(),
            "dense {} vs sparse {}",
            dense.area(),
            sparse.area()
        );
    }

    #[test]
    fn lemma1_coverage_randomised() {
        // Same coverage property as the uniform grid: for pairs within r,
        // the feature's own cell or a duplication target contains p.
        let sample = clustered_sample(3000, 5);
        let t = AdaptiveGrid::build(Rect::unit(), &sample, 100);
        let mut rng = StdRng::seed_from_u64(6);
        let r = 0.05;
        for _ in 0..2000 {
            let f = Point::new(rng.gen(), rng.gen());
            let angle: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            let dist: f64 = rng.gen::<f64>() * r;
            let p = Point::new(
                (f.x + angle.cos() * dist).clamp(0.0, 1.0),
                (f.y + angle.sin() * dist).clamp(0.0, 1.0),
            );
            if !p.within(&f, r) {
                continue;
            }
            let p_cell = t.cell_of(&p);
            let covered =
                t.cell_of(&f) == p_cell || t.duplication_targets_vec(&f, r).contains(&p_cell);
            assert!(covered, "pair p={p} f={f} not covered");
        }
    }

    #[test]
    fn duplication_excludes_own_cell_and_far_cells() {
        let sample = clustered_sample(3000, 7);
        let t = AdaptiveGrid::build(Rect::unit(), &sample, 64);
        let p = Point::new(0.22, 0.22);
        let own = t.cell_of(&p);
        let targets = t.duplication_targets_vec(&p, 0.02);
        assert!(!targets.contains(&own));
        for c in &targets {
            assert!(t.cell_rect(*c).mindist(&p) <= 0.02 * 1.001);
        }
    }

    #[test]
    fn boundary_points_clamp() {
        let sample = clustered_sample(1000, 8);
        let t = AdaptiveGrid::build(Rect::unit(), &sample, 32);
        // Outside points clamp onto the boundary leaf.
        let c = t.cell_of(&Point::new(-1.0, 0.5));
        assert!(t.cell_rect(c).min().x == 0.0);
    }

    #[test]
    fn min_cell_floor_is_respected() {
        let sample = clustered_sample(5000, 11);
        let min_cell = 0.1;
        let t = AdaptiveGrid::build_with_min_cell(Rect::unit(), &sample, 1024, min_cell);
        for i in 0..t.num_cells() {
            let rect = t.cell_rect(CellId(i as u32));
            assert!(
                rect.width() >= min_cell - 1e-12 && rect.height() >= min_cell - 1e-12,
                "leaf {i} side {}x{} below the floor",
                rect.width(),
                rect.height()
            );
        }
        // The floor also caps the leaf count: at most a 16x16 tiling here.
        assert!(t.num_cells() <= 256);
        // A floor wider than the bounds forbids any split.
        let single = AdaptiveGrid::build_with_min_cell(Rect::unit(), &sample, 64, 2.0);
        assert_eq!(single.num_cells(), 1);
    }

    #[test]
    #[should_panic]
    fn zero_cells_rejected() {
        let _ = AdaptiveGrid::build(Rect::unit(), &[], 0);
    }
}
