//! A bucketed point index for radius queries.
//!
//! Used by the centralized baselines (`spq-core::centralized`) to find the
//! feature objects within distance `r` of a data object without scanning
//! the full feature set. This is *not* part of the paper's distributed
//! algorithms — it exists so the test suite has an independent, obviously
//! correct oracle that is still fast enough to validate large runs.

use crate::grid::Grid;
use crate::point::Point;
use crate::rect::Rect;

/// A static grid-bucketed index over items with a point location.
///
/// Storage is a CSR (compressed sparse row) layout: one flat, cell-grouped
/// item slice plus a per-cell offset table. A radius scan touches one
/// contiguous range per visited cell — no pointer-chasing through nested
/// vectors — and `len` is the flat slice's length, O(1).
#[derive(Debug, Clone)]
pub struct GridIndex<T> {
    grid: Grid,
    /// `offsets[c]..offsets[c + 1]` is cell `c`'s range in `items`.
    offsets: Box<[u32]>,
    /// All items, grouped by cell, insertion order preserved within a cell.
    items: Box<[(Point, T)]>,
}

impl<T> GridIndex<T> {
    /// Builds an index with roughly `sqrt(n)` cells per axis over `bounds`.
    pub fn build<I>(bounds: Rect, items: I) -> Self
    where
        I: IntoIterator<Item = (Point, T)>,
    {
        let items: Vec<(Point, T)> = items.into_iter().collect();
        let n_axis = ((items.len() as f64).sqrt().ceil() as u32).clamp(1, 1024);
        Self::build_with_grid(Grid::new(bounds, n_axis, n_axis), items)
    }

    /// Builds an index over an explicit grid: a stable sort by cell id
    /// groups the items (preserving insertion order within a cell), and a
    /// counting pass produces the offset table.
    pub fn build_with_grid<I>(grid: Grid, items: I) -> Self
    where
        I: IntoIterator<Item = (Point, T)>,
    {
        let mut keyed: Vec<(u32, (Point, T))> = items
            .into_iter()
            .map(|item| (grid.cell_of(&item.0).index() as u32, item))
            .collect();
        assert!(
            keyed.len() <= u32::MAX as usize,
            "grid index offsets are u32"
        );
        keyed.sort_by_key(|&(c, _)| c);
        let num_cells = grid.num_cells();
        let mut offsets = vec![0u32; num_cells + 1];
        for &(c, _) in &keyed {
            offsets[c as usize + 1] += 1;
        }
        for c in 0..num_cells {
            offsets[c + 1] += offsets[c];
        }
        Self {
            grid,
            offsets: offsets.into_boxed_slice(),
            items: keyed.into_iter().map(|(_, item)| item).collect(),
        }
    }

    /// Total number of indexed items (O(1)).
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when the index holds no items (O(1)).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// One cell's contiguous item range.
    #[inline]
    fn cell_items(&self, cell: crate::grid::CellId) -> &[(Point, T)] {
        let c = cell.index();
        &self.items[self.offsets[c] as usize..self.offsets[c + 1] as usize]
    }

    /// Calls `f` for every item within distance `r` of `center`.
    pub fn for_each_within<'a, F: FnMut(&'a Point, &'a T)>(
        &'a self,
        center: &Point,
        r: f64,
        mut f: F,
    ) {
        assert!(r >= 0.0 && r.is_finite(), "radius must be finite and >= 0");
        let r_sq = r * r;
        // Visit the center's own cell plus every Lemma-1 neighbour; that is
        // exactly the set of cells whose MINDIST to the center is <= r.
        let mut visit = |cell: crate::grid::CellId| {
            for (p, item) in self.cell_items(cell) {
                if p.dist_sq(center) <= r_sq {
                    f(p, item);
                }
            }
        };
        visit(self.grid.cell_of(center));
        self.grid.for_each_duplication_target(center, r, &mut visit);
    }

    /// Collects the items within distance `r` of `center`.
    pub fn within(&self, center: &Point, r: f64) -> Vec<&T> {
        let mut out = Vec::new();
        self.for_each_within(center, r, |_, item| out.push(item));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn finds_only_items_in_radius() {
        let idx = GridIndex::build(
            Rect::unit(),
            vec![
                (Point::new(0.10, 0.10), "a"),
                (Point::new(0.20, 0.10), "b"),
                (Point::new(0.90, 0.90), "c"),
            ],
        );
        let mut hits = idx.within(&Point::new(0.12, 0.10), 0.1);
        hits.sort();
        assert_eq!(hits, vec![&"a", &"b"]);
        assert!(idx.within(&Point::new(0.5, 0.5), 0.05).is_empty());
    }

    #[test]
    fn radius_zero_matches_exact_location() {
        let idx = GridIndex::build(Rect::unit(), vec![(Point::new(0.5, 0.5), 1)]);
        assert_eq!(idx.within(&Point::new(0.5, 0.5), 0.0), vec![&1]);
        assert!(idx.within(&Point::new(0.5001, 0.5), 0.0).is_empty());
    }

    #[test]
    fn empty_index() {
        let idx: GridIndex<u8> = GridIndex::build(Rect::unit(), vec![]);
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.within(&Point::new(0.5, 0.5), 1.0).is_empty());
    }

    #[test]
    fn matches_linear_scan_on_random_data() {
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<(Point, usize)> = (0..500)
            .map(|i| (Point::new(rng.gen(), rng.gen()), i))
            .collect();
        let idx = GridIndex::build(Rect::unit(), pts.clone());
        assert_eq!(idx.len(), 500);
        for _ in 0..50 {
            let c = Point::new(rng.gen(), rng.gen());
            let r = rng.gen::<f64>() * 0.3;
            let mut expected: Vec<usize> = pts
                .iter()
                .filter(|(p, _)| p.within(&c, r))
                .map(|&(_, i)| i)
                .collect();
            expected.sort_unstable();
            let mut got: Vec<usize> = idx.within(&c, r).into_iter().copied().collect();
            got.sort_unstable();
            assert_eq!(got, expected);
        }
    }

    #[test]
    fn query_point_outside_bounds_still_works() {
        let idx = GridIndex::build(Rect::unit(), vec![(Point::new(0.01, 0.5), 7)]);
        // Center outside the data space; its clamped cell plus neighbours
        // must still find the item.
        assert_eq!(idx.within(&Point::new(-0.05, 0.5), 0.1), vec![&7]);
    }
}
