//! The query-time uniform grid of Section 4.1.
//!
//! The grid is defined *after* the query radius `r` is known. Every object
//! is assigned to the cell enclosing it; every feature object is
//! additionally duplicated into each other cell `Cj` with
//! `MINDIST(f, Cj) <= r` (Lemma 1), which makes each cell independently
//! processable: for any data object `p` in a cell, every feature within
//! distance `r` of `p` is present in that cell's partition.

use crate::point::Point;
use crate::rect::Rect;
use std::fmt;

/// Identifier of a grid cell, row-major: `id = iy * nx + ix`.
///
/// Cell ids double as MapReduce partition keys (one Reduce task per cell in
/// the paper's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CellId(pub u32);

impl CellId {
    /// The raw id as a usize, for indexing per-cell tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CellId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// A regular uniform grid over a bounded 2-D data space.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    bounds: Rect,
    nx: u32,
    ny: u32,
    cell_w: f64,
    cell_h: f64,
}

/// Relative tolerance applied to the Lemma-1 test `MINDIST(f, Cj) <= r`.
///
/// Duplication is *conservative*: adding a borderline cell can only ship a
/// feature that turns out to be just outside `r` of every data object in
/// it (the reduce-side `d(p,f) <= r` check still decides relevance), while
/// missing one could violate Lemma 1 under floating-point rounding. We
/// therefore inflate the radius by one part in 10^12 for the duplication
/// test only.
const DUP_EPS: f64 = 1e-12;

impl Grid {
    /// Creates an `nx × ny` grid over `bounds`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero or the bounds are degenerate.
    pub fn new(bounds: Rect, nx: u32, ny: u32) -> Self {
        assert!(nx > 0 && ny > 0, "grid must have at least one cell");
        assert!(
            bounds.width() > 0.0 && bounds.height() > 0.0,
            "grid bounds must have positive area"
        );
        Self {
            bounds,
            nx,
            ny,
            cell_w: bounds.width() / nx as f64,
            cell_h: bounds.height() / ny as f64,
        }
    }

    /// Creates a square `n × n` grid (the paper's "grid size n" parameter,
    /// e.g. 50x50).
    pub fn square(bounds: Rect, n: u32) -> Self {
        Self::new(bounds, n, n)
    }

    /// The data-space bounds.
    pub fn bounds(&self) -> &Rect {
        &self.bounds
    }

    /// Cells along x.
    pub fn nx(&self) -> u32 {
        self.nx
    }

    /// Cells along y.
    pub fn ny(&self) -> u32 {
        self.ny
    }

    /// Total number of cells `R` (= number of Reduce tasks in the paper).
    pub fn num_cells(&self) -> usize {
        self.nx as usize * self.ny as usize
    }

    /// Cell side along x (`α` in Section 6 for square grids on square
    /// bounds).
    pub fn cell_width(&self) -> f64 {
        self.cell_w
    }

    /// Cell side along y.
    pub fn cell_height(&self) -> f64 {
        self.cell_h
    }

    /// The id of the cell at grid coordinates `(ix, iy)`.
    #[inline]
    pub fn cell_id(&self, ix: u32, iy: u32) -> CellId {
        debug_assert!(ix < self.nx && iy < self.ny);
        CellId(iy * self.nx + ix)
    }

    /// Grid coordinates of a cell id.
    #[inline]
    pub fn cell_coords(&self, c: CellId) -> (u32, u32) {
        (c.0 % self.nx, c.0 / self.nx)
    }

    /// The cell enclosing a point.
    ///
    /// Points on interior cell boundaries belong to the higher-index cell
    /// (half-open cells); points on the upper data-space boundary are
    /// clamped into the last cell, so every point in `bounds` maps to
    /// exactly one cell. Points outside the bounds are clamped as well —
    /// loaders are expected to normalise coordinates into the data space.
    #[inline]
    pub fn cell_of(&self, p: &Point) -> CellId {
        let ix = self.axis_index(p.x - self.bounds.min().x, self.cell_w, self.nx);
        let iy = self.axis_index(p.y - self.bounds.min().y, self.cell_h, self.ny);
        CellId(iy * self.nx + ix)
    }

    #[inline]
    fn axis_index(&self, offset: f64, cell: f64, n: u32) -> u32 {
        let i = (offset / cell).floor();
        if i < 0.0 {
            0
        } else if i >= n as f64 {
            n - 1
        } else {
            i as u32
        }
    }

    /// The rectangle of a cell.
    pub fn cell_rect(&self, c: CellId) -> Rect {
        let (ix, iy) = self.cell_coords(c);
        let min_x = self.bounds.min().x + ix as f64 * self.cell_w;
        let min_y = self.bounds.min().y + iy as f64 * self.cell_h;
        Rect::from_coords(min_x, min_y, min_x + self.cell_w, min_y + self.cell_h)
    }

    /// All cells other than the enclosing one whose `MINDIST` to `p` is at
    /// most `r` — the duplication targets of Lemma 1 for a feature object
    /// at `p`.
    ///
    /// The search is restricted to the index window of the box
    /// `[p − r, p + r]`, so the cost is `O(((2r/α)+2)²)` regardless of grid
    /// size — at most the 8 surrounding cells in the paper's recommended
    /// regime `r <= α`.
    pub fn duplication_targets(&self, p: &Point, r: f64) -> Vec<CellId> {
        let mut out = Vec::new();
        self.for_each_duplication_target(p, r, |c| out.push(c));
        out
    }

    /// Visitor form of [`Grid::duplication_targets`] (allocation-free; this
    /// is the hot path of every Map task).
    pub fn for_each_duplication_target<F: FnMut(CellId)>(&self, p: &Point, r: f64, mut f: F) {
        assert!(r >= 0.0 && r.is_finite(), "radius must be finite and >= 0");
        let own = self.cell_of(p);
        let r_sq = r * r * (1.0 + DUP_EPS);
        let min = self.bounds.min();
        let lo_x = self.axis_index(p.x - r - min.x, self.cell_w, self.nx);
        let hi_x = self.axis_index(p.x + r - min.x, self.cell_w, self.nx);
        let lo_y = self.axis_index(p.y - r - min.y, self.cell_h, self.ny);
        let hi_y = self.axis_index(p.y + r - min.y, self.cell_h, self.ny);
        for iy in lo_y..=hi_y {
            for ix in lo_x..=hi_x {
                let c = self.cell_id(ix, iy);
                if c == own {
                    continue;
                }
                if self.cell_rect(c).mindist_sq(p) <= r_sq {
                    f(c);
                }
            }
        }
    }

    /// Iterates over all cell ids.
    pub fn cells(&self) -> impl Iterator<Item = CellId> {
        (0..self.num_cells() as u32).map(CellId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The 4x4 grid over [0,10]² of Figure 2.
    fn paper_grid() -> Grid {
        Grid::square(Rect::from_coords(0.0, 0.0, 10.0, 10.0), 4)
    }

    #[test]
    fn cell_assignment_basics() {
        let g = paper_grid();
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_width(), 2.5);
        // Figure 2 numbers cells 1..16 bottom-left to top-right; our ids are
        // 0-based: its "cell 14" (containing f7 at (3.0, 8.1)) is id 13.
        assert_eq!(g.cell_of(&Point::new(3.0, 8.1)), CellId(13));
        // p4 at (1.8, 1.8) lies in the bottom-left cell.
        assert_eq!(g.cell_of(&Point::new(1.8, 1.8)), CellId(0));
    }

    #[test]
    fn boundary_points_map_into_grid() {
        let g = paper_grid();
        // Upper data-space corner clamps into the last cell.
        assert_eq!(g.cell_of(&Point::new(10.0, 10.0)), CellId(15));
        assert_eq!(g.cell_of(&Point::new(0.0, 0.0)), CellId(0));
        // Interior boundary belongs to the higher cell.
        assert_eq!(g.cell_of(&Point::new(2.5, 0.0)), CellId(1));
        // Out-of-bounds points clamp.
        assert_eq!(g.cell_of(&Point::new(-5.0, 50.0)), CellId(12));
    }

    #[test]
    fn cell_rect_tiles_the_space() {
        let g = paper_grid();
        let r5 = g.cell_rect(CellId(5)); // ix=1, iy=1
        assert_eq!(r5, Rect::from_coords(2.5, 2.5, 5.0, 5.0));
        // Every cell's rect contains its own representative point.
        for c in g.cells() {
            let rect = g.cell_rect(c);
            assert_eq!(g.cell_of(&rect.center()), c);
        }
    }

    #[test]
    fn cell_coords_roundtrip() {
        let g = Grid::new(Rect::unit(), 7, 3);
        for c in g.cells() {
            let (ix, iy) = g.cell_coords(c);
            assert_eq!(g.cell_id(ix, iy), c);
        }
    }

    #[test]
    fn paper_duplication_example_f7() {
        // Section 4.1: f7 = (3.0, 8.1), r = 1.5 must duplicate to the cells
        // the paper numbers C9, C10 and C13 (1-based) = ids 8, 9, 12.
        let g = paper_grid();
        let mut targets = g.duplication_targets(&Point::new(3.0, 8.1), 1.5);
        targets.sort();
        assert_eq!(targets, vec![CellId(8), CellId(9), CellId(12)]);
    }

    #[test]
    fn interior_feature_far_from_borders_has_no_duplicates() {
        let g = paper_grid();
        // Centre of cell 5 is (3.75, 3.75); with r=1.0 the nearest border
        // is 1.25 away.
        assert!(g
            .duplication_targets(&Point::new(3.75, 3.75), 1.0)
            .is_empty());
    }

    #[test]
    fn corner_feature_duplicates_to_three_neighbors() {
        let g = paper_grid();
        // Just inside the corner shared by cells 5, 6, 9, 10.
        let p = Point::new(5.01, 5.01);
        let mut t = g.duplication_targets(&p, 0.5);
        t.sort();
        assert_eq!(t, vec![CellId(5), CellId(6), CellId(9)]);
    }

    #[test]
    fn edge_feature_duplicates_to_one_neighbor() {
        let g = paper_grid();
        // Near the vertical border between cells 5 (x in [2.5,5]) and 6,
        // far from horizontal borders.
        let p = Point::new(4.9, 3.75);
        assert_eq!(g.duplication_targets(&p, 0.2), vec![CellId(6)]);
    }

    #[test]
    fn radius_larger_than_cell_reaches_further() {
        let g = paper_grid();
        let p = Point::new(1.0, 1.0);
        // r = 3.0 exceeds the cell side 2.5 but not two cells: cell 2
        // (x in [5.0, 7.5]) is 4.0 away and stays excluded.
        let mut t = g.duplication_targets(&p, 3.0);
        t.sort();
        assert_eq!(t, vec![CellId(1), CellId(4), CellId(5)]);
        // And with r=4.5 the next ring joins.
        let mut t2 = g.duplication_targets(&p, 4.5);
        t2.sort();
        assert!(t2.contains(&CellId(2)) && t2.contains(&CellId(8)));
    }

    #[test]
    fn zero_radius_never_duplicates_interior_points() {
        let g = paper_grid();
        assert!(g.duplication_targets(&Point::new(1.2, 1.2), 0.0).is_empty());
    }

    #[test]
    fn exact_boundary_distance_is_included() {
        let g = paper_grid();
        // Point at x = 2.0 is exactly 0.5 from the border at 2.5.
        let t = g.duplication_targets(&Point::new(2.0, 1.25), 0.5);
        assert_eq!(t, vec![CellId(1)]);
    }

    #[test]
    fn single_cell_grid_has_no_targets() {
        let g = Grid::square(Rect::unit(), 1);
        assert!(g
            .duplication_targets(&Point::new(0.5, 0.5), 10.0)
            .is_empty());
        assert_eq!(g.cell_of(&Point::new(0.3, 0.9)), CellId(0));
    }

    #[test]
    fn lemma1_coverage_randomised() {
        // For random (p, f) pairs within r, f's own cell or its duplication
        // targets must include p's cell — the correctness core of Lemma 1.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        let g = Grid::square(Rect::unit(), 8);
        let r = 0.07;
        for _ in 0..2000 {
            let f = Point::new(rng.gen(), rng.gen());
            let angle: f64 = rng.gen::<f64>() * std::f64::consts::TAU;
            let dist: f64 = rng.gen::<f64>() * r;
            let p = Point::new(
                (f.x + angle.cos() * dist).clamp(0.0, 1.0),
                (f.y + angle.sin() * dist).clamp(0.0, 1.0),
            );
            if !p.within(&f, r) {
                continue; // clamping may have moved p, keep only true pairs
            }
            let p_cell = g.cell_of(&p);
            let covered = g.cell_of(&f) == p_cell || g.duplication_targets(&f, r).contains(&p_cell);
            assert!(covered, "pair p={p} f={f} not covered");
        }
    }

    #[test]
    #[should_panic]
    fn zero_dimension_grid_rejected() {
        let _ = Grid::new(Rect::unit(), 0, 4);
    }
}
