//! A unified view over the two space-partitioning schemes.

use crate::adaptive::AdaptiveGrid;
use crate::grid::{CellId, Grid};
use crate::point::Point;
use crate::rect::Rect;

/// Either the paper's uniform grid (Section 4.1) or the adaptive quadtree
/// extension ([`AdaptiveGrid`]). Both expose the same three operations
/// the Map phase needs — cell assignment, Lemma-1 duplication targets,
/// and the cell count that sizes the Reduce phase.
#[derive(Debug, Clone)]
pub enum SpacePartition {
    /// Regular uniform grid.
    Uniform(Grid),
    /// Sample-driven quadtree partition.
    Adaptive(AdaptiveGrid),
}

impl SpacePartition {
    /// Number of cells (= reduce tasks).
    pub fn num_cells(&self) -> usize {
        match self {
            SpacePartition::Uniform(g) => g.num_cells(),
            SpacePartition::Adaptive(t) => t.num_cells(),
        }
    }

    /// The cell enclosing a point.
    #[inline]
    pub fn cell_of(&self, p: &Point) -> CellId {
        match self {
            SpacePartition::Uniform(g) => g.cell_of(p),
            SpacePartition::Adaptive(t) => t.cell_of(p),
        }
    }

    /// Every other cell within `MINDIST <= r` of the point.
    #[inline]
    pub fn for_each_duplication_target<F: FnMut(CellId)>(&self, p: &Point, r: f64, f: F) {
        match self {
            SpacePartition::Uniform(g) => g.for_each_duplication_target(p, r, f),
            SpacePartition::Adaptive(t) => t.for_each_duplication_target(p, r, f),
        }
    }

    /// The rectangle of a cell.
    pub fn cell_rect(&self, c: CellId) -> Rect {
        match self {
            SpacePartition::Uniform(g) => g.cell_rect(c),
            SpacePartition::Adaptive(t) => t.cell_rect(c),
        }
    }

    /// The underlying uniform grid, when this is one.
    pub fn as_uniform(&self) -> Option<&Grid> {
        match self {
            SpacePartition::Uniform(g) => Some(g),
            SpacePartition::Adaptive(_) => None,
        }
    }
}

impl From<Grid> for SpacePartition {
    fn from(g: Grid) -> Self {
        SpacePartition::Uniform(g)
    }
}

impl From<AdaptiveGrid> for SpacePartition {
    fn from(t: AdaptiveGrid) -> Self {
        SpacePartition::Adaptive(t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_delegates() {
        let p: SpacePartition = Grid::square(Rect::unit(), 4).into();
        assert_eq!(p.num_cells(), 16);
        assert!(p.as_uniform().is_some());
        let c = p.cell_of(&Point::new(0.1, 0.1));
        assert!(p.cell_rect(c).contains(&Point::new(0.1, 0.1)));
    }

    #[test]
    fn adaptive_delegates() {
        let pts = [Point::new(0.1, 0.1), Point::new(0.9, 0.9)];
        let p: SpacePartition = AdaptiveGrid::build(Rect::unit(), &pts, 16).into();
        assert!(p.num_cells() >= 1);
        assert!(p.as_uniform().is_none());
        let mut targets = 0;
        p.for_each_duplication_target(&Point::new(0.5, 0.5), 0.3, |_| targets += 1);
        assert!(targets >= 1);
    }
}
