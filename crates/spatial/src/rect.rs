//! Axis-aligned rectangles and the `MINDIST` primitive.

use crate::point::Point;
use std::fmt;

/// An axis-aligned rectangle `[min_x, max_x] × [min_y, max_y]`.
///
/// Grid cells are rectangles; `MINDIST(f, Ci)` (Section 4.1) is the distance
/// from the feature's location to the nearest edge of the cell, and zero if
/// the feature lies inside.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    min: Point,
    max: Point,
}

impl Rect {
    /// Creates a rectangle from its corners.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` on either axis or any coordinate is not finite.
    pub fn new(min: Point, max: Point) -> Self {
        assert!(
            min.x.is_finite() && min.y.is_finite() && max.x.is_finite() && max.y.is_finite(),
            "rect coordinates must be finite"
        );
        assert!(min.x <= max.x && min.y <= max.y, "rect min must be <= max");
        Self { min, max }
    }

    /// Creates a rectangle from coordinate extents.
    pub fn from_coords(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Self::new(Point::new(min_x, min_y), Point::new(max_x, max_y))
    }

    /// The unit square `[0,1] × [0,1]` — the normalised data space used by
    /// the paper's Section 6.3 analysis and by the synthetic generators.
    pub fn unit() -> Self {
        Self::from_coords(0.0, 0.0, 1.0, 1.0)
    }

    /// Lower-left corner.
    #[inline]
    pub fn min(&self) -> Point {
        self.min
    }

    /// Upper-right corner.
    #[inline]
    pub fn max(&self) -> Point {
        self.max
    }

    /// Side length along x.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Side length along y.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// True if the point lies inside (inclusive of all edges).
    #[inline]
    pub fn contains(&self, p: &Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Squared `MINDIST` from a point to this rectangle: 0 when the point
    /// is inside, otherwise the squared distance to the nearest edge.
    #[inline]
    pub fn mindist_sq(&self, p: &Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// `MINDIST(p, rect)` as defined in Section 4.1.
    #[inline]
    pub fn mindist(&self, p: &Point) -> f64 {
        self.mindist_sq(p).sqrt()
    }

    /// The centre of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} — {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r() -> Rect {
        Rect::from_coords(1.0, 1.0, 3.0, 2.0)
    }

    #[test]
    fn dimensions() {
        assert_eq!(r().width(), 2.0);
        assert_eq!(r().height(), 1.0);
        assert_eq!(r().area(), 2.0);
        assert_eq!(r().center(), Point::new(2.0, 1.5));
    }

    #[test]
    fn contains_is_inclusive_on_all_edges() {
        let rect = r();
        assert!(rect.contains(&Point::new(1.0, 1.0)));
        assert!(rect.contains(&Point::new(3.0, 2.0)));
        assert!(rect.contains(&Point::new(2.0, 1.5)));
        assert!(!rect.contains(&Point::new(0.999, 1.5)));
        assert!(!rect.contains(&Point::new(2.0, 2.001)));
    }

    #[test]
    fn mindist_zero_inside() {
        assert_eq!(r().mindist(&Point::new(2.0, 1.5)), 0.0);
        assert_eq!(r().mindist(&Point::new(1.0, 1.0)), 0.0); // on corner
    }

    #[test]
    fn mindist_to_edges() {
        // Left of the rect: horizontal gap only.
        assert_eq!(r().mindist(&Point::new(0.0, 1.5)), 1.0);
        // Above: vertical gap only.
        assert_eq!(r().mindist(&Point::new(2.0, 4.0)), 2.0);
    }

    #[test]
    fn mindist_to_corner_is_euclidean() {
        // Below-left of (1,1) by (3,4)-scaled offsets.
        let p = Point::new(1.0 - 3.0, 1.0 - 4.0);
        assert_eq!(r().mindist(&p), 5.0);
    }

    #[test]
    fn unit_square() {
        let u = Rect::unit();
        assert_eq!(u.area(), 1.0);
        assert!(u.contains(&Point::new(0.5, 0.5)));
    }

    #[test]
    #[should_panic]
    fn inverted_rect_rejected() {
        let _ = Rect::from_coords(1.0, 0.0, 0.0, 1.0);
    }

    #[test]
    #[should_panic]
    fn non_finite_rejected() {
        let _ = Rect::from_coords(0.0, 0.0, f64::INFINITY, 1.0);
    }
}
