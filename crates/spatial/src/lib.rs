//! Spatial substrate for spatial preference queries using keywords.
//!
//! The paper's partitioning scheme (Section 4.1) lays a regular, uniform
//! grid over the 2-dimensional data space *at query time* (the cell side is
//! chosen relative to the query radius `r`), assigns every object to its
//! enclosing cell, and duplicates each feature object into every other cell
//! `Ci` with `MINDIST(f, Ci) <= r` (Lemma 1). This crate provides the
//! geometry for that scheme:
//!
//! * [`Point`] / [`Rect`] — 2-D points and axis-aligned rectangles with the
//!   `MINDIST` primitive (distance from a point to the nearest rectangle
//!   edge, 0 when inside).
//! * [`Grid`] — the query-time uniform grid: cell assignment (boundary
//!   safe), cell rectangles, and enumeration of Lemma-1 duplication
//!   targets.
//! * [`GridIndex`] — a bucketed point index used by the centralized
//!   baselines for `r`-range queries.

pub mod adaptive;
pub mod grid;
pub mod grid_index;
pub mod partition;
pub mod point;
pub mod rect;

pub use adaptive::AdaptiveGrid;
pub use grid::{CellId, Grid};
pub use grid_index::GridIndex;
pub use partition::SpacePartition;
pub use point::Point;
pub use rect::Rect;
