//! 2-D points and Euclidean distance.

use std::fmt;

/// A point in the 2-dimensional data space (`p.x`, `p.y` in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// The x coordinate.
    pub x: f64,
    /// The y coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Squared Euclidean distance to another point.
    ///
    /// The range predicate `d(p, f) <= r` is evaluated as
    /// `dist_sq <= r*r` throughout the codebase: it avoids the square
    /// root in the innermost loop of every reducer, and is exact for the
    /// comparison because both sides are non-negative.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// True when the point lies within distance `r` of `other`.
    #[inline]
    pub fn within(&self, other: &Point, r: f64) -> bool {
        self.dist_sq(other) <= r * r
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Self { x, y }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_345_triangle() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(b.dist(&a), 5.0);
    }

    #[test]
    fn zero_distance_to_self() {
        let p = Point::new(1.5, -2.5);
        assert_eq!(p.dist(&p), 0.0);
        assert!(p.within(&p, 0.0));
    }

    #[test]
    fn within_is_inclusive() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.5, 0.0);
        assert!(a.within(&b, 1.5));
        assert!(!a.within(&b, 1.4999));
    }

    #[test]
    fn paper_example_distances() {
        // Figure 1: p4=(1.8,1.8), f1=(2.8,1.2) are within r=1.5.
        let p4 = Point::new(1.8, 1.8);
        let f1 = Point::new(2.8, 1.2);
        assert!(p4.within(&f1, 1.5));
        // p1=(4.6,4.8), f4=(3.8,5.5) within 1.5; f5=(5.2,5.1) also close.
        let p1 = Point::new(4.6, 4.8);
        assert!(p1.within(&Point::new(3.8, 5.5), 1.5));
        assert!(p1.within(&Point::new(5.2, 5.1), 1.5));
        // p2=(7.5,1.7) vs f3=(8.7,1.9): dist ~1.216 <= 1.5.
        assert!(Point::new(7.5, 1.7).within(&Point::new(8.7, 1.9), 1.5));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (2.0, 3.0).into();
        assert_eq!(p, Point::new(2.0, 3.0));
    }
}
