//! String interning between keyword text and dense [`Term`] ids.
//!
//! The paper's datasets carry textual dictionaries (34,716 terms for Flickr,
//! 88,706 for Twitter, 1,000 for the synthetic sets). All hot paths operate
//! on interned ids; the vocabulary is only consulted at load/report time.

use crate::keywords::{KeywordSet, Term};
use std::collections::HashMap;

/// A bidirectional mapping between keyword strings and [`Term`] ids.
///
/// Ids are assigned densely in insertion order, so a vocabulary built from a
/// frequency-ranked word list gives rank-ordered ids — which is what the
/// Zipf-based generators expect (`Term(0)` = most frequent word).
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    by_name: HashMap<String, Term>,
    names: Vec<String>,
}

/// Two vocabularies are equal iff they assign the same ids to the same
/// words — the `by_name` map is derived from `names`, so comparing the
/// insertion-ordered word list is sufficient.
impl PartialEq for Vocabulary {
    fn eq(&self, other: &Self) -> bool {
        self.names == other.names
    }
}

impl Eq for Vocabulary {}

impl Vocabulary {
    /// Creates an empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a synthetic vocabulary `w0, w1, …` of the given size, used by
    /// generators that only need term *ids* with realistic cardinality.
    pub fn synthetic(size: usize) -> Self {
        let mut v = Self::new();
        for i in 0..size {
            v.intern(&format!("w{i}"));
        }
        v
    }

    /// Interns a word, returning its (possibly pre-existing) term id.
    pub fn intern(&mut self, word: &str) -> Term {
        if let Some(&t) = self.by_name.get(word) {
            return t;
        }
        let t = Term(u32::try_from(self.names.len()).expect("vocabulary exceeds u32 terms"));
        self.by_name.insert(word.to_owned(), t);
        self.names.push(word.to_owned());
        t
    }

    /// Looks up a word without interning.
    pub fn get(&self, word: &str) -> Option<Term> {
        self.by_name.get(word).copied()
    }

    /// The word for a term id, if in range.
    pub fn name(&self, t: Term) -> Option<&str> {
        self.names.get(t.index()).map(String::as_str)
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over the interned words in term-id order.
    pub fn words(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// Interns every word of a whitespace-separated string into a set.
    pub fn intern_set(&mut self, text: &str) -> KeywordSet {
        KeywordSet::new(text.split_whitespace().map(|w| self.intern(w)).collect())
    }

    /// Resolves a keyword set back to words (unknown ids render as `t<id>`).
    pub fn render(&self, set: &KeywordSet) -> String {
        let mut out = String::new();
        for (i, t) in set.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            match self.name(t) {
                Some(w) => out.push_str(w),
                None => out.push_str(&t.to_string()),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("italian");
        let b = v.intern("gourmet");
        assert_eq!(v.intern("italian"), a);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_insertion_order() {
        let mut v = Vocabulary::new();
        assert_eq!(v.intern("a"), Term(0));
        assert_eq!(v.intern("b"), Term(1));
        assert_eq!(v.intern("c"), Term(2));
    }

    #[test]
    fn lookup_both_directions() {
        let mut v = Vocabulary::new();
        let t = v.intern("sushi");
        assert_eq!(v.get("sushi"), Some(t));
        assert_eq!(v.get("wine"), None);
        assert_eq!(v.name(t), Some("sushi"));
        assert_eq!(v.name(Term(99)), None);
    }

    #[test]
    fn synthetic_vocabulary() {
        let v = Vocabulary::synthetic(1000);
        assert_eq!(v.len(), 1000);
        assert_eq!(v.get("w0"), Some(Term(0)));
        assert_eq!(v.get("w999"), Some(Term(999)));
    }

    #[test]
    fn intern_set_and_render_roundtrip() {
        let mut v = Vocabulary::new();
        let s = v.intern_set("italian gourmet italian");
        assert_eq!(s.len(), 2);
        assert_eq!(v.render(&s), "italian gourmet"); // sorted by id = insertion order
    }

    #[test]
    fn render_unknown_terms() {
        let v = Vocabulary::new();
        let s = KeywordSet::from_ids([7]);
        assert_eq!(v.render(&s), "t7");
    }

    #[test]
    fn empty_vocab() {
        let v = Vocabulary::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
    }
}
