//! Zipf-distributed term sampling.
//!
//! Real keyword dictionaries are heavily skewed: a handful of terms appear
//! in millions of objects while most of the dictionary is rare. The
//! Flickr-like and Twitter-like generators sample terms from a Zipf
//! distribution over a rank-ordered vocabulary so that (a) the map-side
//! keyword pruning rate and (b) the score distribution seen by the
//! early-termination algorithms resemble those of the paper's real data.
//! The synthetic UN/CL datasets of the paper use uniform term selection,
//! which is `Zipf` with exponent 0.
//!
//! Sampling is inverse-CDF over a precomputed table (O(log n) per draw),
//! which is simple, exact, and fast enough for dataset generation.

use rand::Rng;

/// A sampler for ranks `0..n` with probability proportional to
/// `1 / (rank + 1)^exponent`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative (unnormalised) weights; `cdf[i]` = sum of weights 0..=i.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds a sampler over `n` ranks with the given exponent.
    ///
    /// `exponent = 0.0` is the uniform distribution; `~1.0` matches natural
    /// language term frequencies.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or the exponent is negative/NaN.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "zipf over empty domain");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 0..n {
            acc += 1.0 / ((rank + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the domain has a single rank.
    pub fn is_empty(&self) -> bool {
        false // constructor rejects n == 0
    }

    /// Draws one rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cdf.last().expect("non-empty cdf");
        let x = rng.gen::<f64>() * total;
        // partition_point returns the first index whose cumulative weight
        // exceeds x, i.e. the sampled rank.
        self.cdf
            .partition_point(|&c| c <= x)
            .min(self.cdf.len() - 1)
    }

    /// Draws `k` *distinct* ranks (rejection sampling; `k` must not exceed
    /// the domain size). Used to build keyword sets without duplicates.
    pub fn sample_distinct<R: Rng + ?Sized>(&self, rng: &mut R, k: usize) -> Vec<usize> {
        assert!(
            k <= self.len(),
            "cannot draw {k} distinct from {}",
            self.len()
        );
        // For small k relative to n, rejection is near-optimal; fall back to
        // a partial shuffle when k is a large fraction of the domain.
        if k * 4 >= self.len() * 3 {
            let mut all: Vec<usize> = (0..self.len()).collect();
            for i in 0..k {
                let j = rng.gen_range(i..all.len());
                all.swap(i, j);
            }
            all.truncate(k);
            return all;
        }
        let mut out = Vec::with_capacity(k);
        let mut seen = std::collections::HashSet::with_capacity(k * 2);
        while out.len() < k {
            let r = self.sample(rng);
            if seen.insert(r) {
                out.push(r);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_exponent_zero_covers_domain() {
        let z = Zipf::new(10, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Every rank hit, roughly uniformly (10% each ± 3%).
        for &c in &counts {
            assert!((700..=1300).contains(&c), "count {c} not near uniform");
        }
    }

    #[test]
    fn skewed_exponent_prefers_low_ranks() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut head = 0usize;
        const N: usize = 20_000;
        for _ in 0..N {
            if z.sample(&mut rng) < 10 {
                head += 1;
            }
        }
        // Under Zipf(1.0, n=1000) the top-10 ranks carry ~39% of the mass.
        assert!(head > N / 3, "head mass {head} too small for zipf(1)");
    }

    #[test]
    fn single_rank_domain() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn sample_distinct_has_no_duplicates() {
        let z = Zipf::new(50, 0.8);
        let mut rng = StdRng::seed_from_u64(4);
        for k in [0, 1, 5, 25, 50] {
            let v = z.sample_distinct(&mut rng, k);
            assert_eq!(v.len(), k);
            let set: std::collections::HashSet<_> = v.iter().collect();
            assert_eq!(set.len(), k);
            assert!(v.iter().all(|&r| r < 50));
        }
    }

    #[test]
    #[should_panic]
    fn sample_distinct_rejects_oversized_k() {
        let z = Zipf::new(3, 1.0);
        let mut rng = StdRng::seed_from_u64(5);
        let _ = z.sample_distinct(&mut rng, 4);
    }

    #[test]
    #[should_panic]
    fn zero_domain_rejected() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(7);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
