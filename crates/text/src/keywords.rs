//! Sorted keyword sets and merge-based set arithmetic.
//!
//! Feature objects carry a set of keywords `f.W`; queries carry `q.W`
//! (Table 1 of the paper). Both are represented as sorted, deduplicated
//! slices of interned [`Term`] ids so that intersection and union sizes —
//! the only operations the scoring functions need — are a single linear
//! merge without hashing or allocation.

use std::fmt;

/// An interned keyword id assigned by a [`crate::Vocabulary`].
///
/// Term ids are dense (`0..vocab.len()`), which lets generators sample them
/// directly and keeps keyword sets compact (4 bytes per keyword).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Term(pub u32);

impl Term {
    /// The raw id as a usize, for indexing frequency tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An immutable, sorted, deduplicated set of keywords.
///
/// This is the representation of both `f.W` (feature annotations) and `q.W`
/// (query keywords). The invariant — strictly increasing term ids — is
/// established at construction and relied upon by the merge routines.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct KeywordSet {
    terms: Box<[Term]>,
}

impl KeywordSet {
    /// Builds a set from arbitrary terms, sorting and deduplicating.
    pub fn new(mut terms: Vec<Term>) -> Self {
        terms.sort_unstable();
        terms.dedup();
        Self {
            terms: terms.into_boxed_slice(),
        }
    }

    /// Builds a set from raw u32 ids (convenience for tests and loaders).
    pub fn from_ids<I: IntoIterator<Item = u32>>(ids: I) -> Self {
        Self::new(ids.into_iter().map(Term).collect())
    }

    /// Builds a set from a slice already known to be strictly increasing.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted(terms: Vec<Term>) -> Self {
        debug_assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly increasing terms"
        );
        Self {
            terms: terms.into_boxed_slice(),
        }
    }

    /// The empty keyword set (used for data objects, which carry no text).
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of keywords `|W|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True if the set has no keywords.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The sorted terms.
    #[inline]
    pub fn terms(&self) -> &[Term] {
        &self.terms
    }

    /// Membership test (binary search).
    pub fn contains(&self, t: Term) -> bool {
        self.terms.binary_search(&t).is_ok()
    }

    /// Size of the intersection `|A ∩ B|` via a linear merge.
    pub fn intersection_len(&self, other: &KeywordSet) -> usize {
        let (mut a, mut b) = (self.terms.iter(), other.terms.iter());
        let (mut x, mut y) = (a.next(), b.next());
        let mut n = 0;
        while let (Some(&ta), Some(&tb)) = (x, y) {
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => {
                    n += 1;
                    x = a.next();
                    y = b.next();
                }
            }
        }
        n
    }

    /// Size of the union `|A ∪ B|` (inclusion–exclusion over the merge).
    pub fn union_len(&self, other: &KeywordSet) -> usize {
        self.len() + other.len() - self.intersection_len(other)
    }

    /// True if the sets share at least one keyword.
    ///
    /// This is the Map-phase pruning rule of Algorithm 1 (line 9): feature
    /// objects with `q.W ∩ f.W = ∅` cannot contribute to any score and are
    /// dropped before the shuffle. The merge exits on the first hit, so this
    /// is cheaper than `intersection_len() > 0` in the common miss case.
    pub fn intersects(&self, other: &KeywordSet) -> bool {
        let (mut a, mut b) = (self.terms.iter(), other.terms.iter());
        let (mut x, mut y) = (a.next(), b.next());
        while let (Some(&ta), Some(&tb)) = (x, y) {
            match ta.cmp(&tb) {
                std::cmp::Ordering::Less => x = a.next(),
                std::cmp::Ordering::Greater => y = b.next(),
                std::cmp::Ordering::Equal => return true,
            }
        }
        false
    }

    /// Iterates over the terms.
    pub fn iter(&self) -> impl Iterator<Item = Term> + '_ {
        self.terms.iter().copied()
    }
}

impl FromIterator<Term> for KeywordSet {
    fn from_iter<I: IntoIterator<Item = Term>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

impl fmt::Display for KeywordSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn new_sorts_and_dedups() {
        let s = ks(&[5, 1, 3, 1, 5]);
        assert_eq!(s.terms(), &[Term(1), Term(3), Term(5)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn empty_set_behaves() {
        let e = KeywordSet::empty();
        assert!(e.is_empty());
        assert_eq!(e.intersection_len(&ks(&[1, 2])), 0);
        assert_eq!(e.union_len(&ks(&[1, 2])), 2);
        assert!(!e.intersects(&ks(&[1, 2])));
        assert!(!e.contains(Term(1)));
    }

    #[test]
    fn intersection_and_union_lengths() {
        let a = ks(&[1, 2, 3, 7, 9]);
        let b = ks(&[2, 3, 4, 9, 11, 12]);
        assert_eq!(a.intersection_len(&b), 3);
        assert_eq!(b.intersection_len(&a), 3);
        assert_eq!(a.union_len(&b), 8);
    }

    #[test]
    fn disjoint_sets() {
        let a = ks(&[1, 3, 5]);
        let b = ks(&[2, 4, 6]);
        assert_eq!(a.intersection_len(&b), 0);
        assert!(!a.intersects(&b));
        assert_eq!(a.union_len(&b), 6);
    }

    #[test]
    fn identical_sets() {
        let a = ks(&[10, 20, 30]);
        assert_eq!(a.intersection_len(&a.clone()), 3);
        assert_eq!(a.union_len(&a.clone()), 3);
        assert!(a.intersects(&a.clone()));
    }

    #[test]
    fn intersects_finds_first_common_term_early() {
        let a = ks(&[1, 100]);
        let b = ks(&[1, 2, 3]);
        assert!(a.intersects(&b));
        let c = ks(&[99, 100]);
        assert!(a.intersects(&c));
    }

    #[test]
    fn contains_uses_binary_search() {
        let a = ks(&[2, 4, 8, 16]);
        assert!(a.contains(Term(8)));
        assert!(!a.contains(Term(7)));
    }

    #[test]
    fn from_sorted_accepts_valid_input() {
        let s = KeywordSet::from_sorted(vec![Term(1), Term(2), Term(9)]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn from_sorted_rejects_unsorted_in_debug() {
        let _ = KeywordSet::from_sorted(vec![Term(2), Term(1)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(ks(&[1, 2]).to_string(), "{t1,t2}");
        assert_eq!(KeywordSet::empty().to_string(), "{}");
    }

    #[test]
    fn from_iterator_collects() {
        let s: KeywordSet = [Term(3), Term(1), Term(3)].into_iter().collect();
        assert_eq!(s.terms(), &[Term(1), Term(3)]);
    }
}
