//! Textual substrate for spatial preference queries using keywords.
//!
//! The EDBT 2017 paper ranks data objects by the *textual relevance* of
//! nearby feature objects: `w(f, q)` is the Jaccard similarity between the
//! query keyword set `q.W` and the feature keyword set `f.W` (Definition 1),
//! and the early-termination algorithm eSPQlen relies on the keyword-length
//! upper bound of Equation 1. This crate provides those building blocks:
//!
//! * [`Vocabulary`] — interning between keyword strings and dense [`Term`]
//!   ids, so the hot similarity path works on sorted integer slices.
//! * [`KeywordSet`] — an immutable, sorted, deduplicated set of terms with
//!   merge-based intersection/union counting.
//! * [`similarity`] — Jaccard (the paper's choice) plus Dice and overlap
//!   extensions, exact [`Score`] values with a total order, and the
//!   length-based upper bounds that make early termination correct.
//! * [`zipf`] — a Zipf sampler used by the synthetic dataset generators to
//!   mimic the skewed term frequencies of the Flickr/Twitter dictionaries.

pub mod keywords;
pub mod similarity;
pub mod vocab;
pub mod zipf;

pub use keywords::{KeywordSet, Term};
pub use similarity::{Score, SetSimilarity};
pub use vocab::Vocabulary;
pub use zipf::Zipf;
