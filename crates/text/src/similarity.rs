//! Set similarities, exact scores and the early-termination upper bounds.
//!
//! Definition 1 of the paper fixes the non-spatial score to the Jaccard
//! similarity `w(f, q) = |q.W ∩ f.W| / |q.W ∪ f.W|`, bounded in `[0, 1]`.
//! Section 5.1 derives the keyword-length bound of Equation 1,
//!
//! ```text
//! w̄(f, q) = 1                    if |f.W| <  |q.W|
//! w̄(f, q) = |q.W| / |f.W|        if |f.W| >= |q.W|
//! ```
//!
//! which is what allows eSPQlen to stop scanning once the running top-k
//! threshold `τ` reaches the bound of the next feature in keyword-length
//! order. Dice and overlap similarities are provided as documented
//! extensions with their own bounds; the paper itself only uses Jaccard.

use crate::keywords::KeywordSet;
use std::cmp::Ordering;
use std::fmt;

/// A similarity score in `[0, 1]` (data objects use a sentinel above 1 in
/// Map output keys, so the representable range is `[0, 2]`).
///
/// Scores originate as exact rationals `num / den` of small integers, so an
/// `f64` carries them without rounding surprises for equality of identical
/// ratios; the wrapper adds the total order that the shuffle comparators
/// need ([`Ord`] via `total_cmp`) and forbids NaN by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Score(f64);

impl Score {
    /// The zero score.
    pub const ZERO: Score = Score(0.0);
    /// The maximal similarity score.
    pub const ONE: Score = Score(1.0);
    /// The sentinel used by eSPQsco Map output for data objects (Algorithm
    /// 5 line 5): strictly above any Jaccard value, so that data objects
    /// sort before every feature object under a descending-score order.
    pub const DATA_SENTINEL: Score = Score(2.0);

    /// Builds a score from an exact ratio.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0` while `num != 0`; the empty/empty case is
    /// defined as 0 (two empty keyword sets have no common term).
    #[inline]
    pub fn ratio(num: usize, den: usize) -> Score {
        if num == 0 {
            return Score::ZERO;
        }
        assert!(den > 0, "score ratio with zero denominator");
        Score(num as f64 / den as f64)
    }

    /// Builds a score from a raw float.
    ///
    /// # Panics
    ///
    /// Panics if the value is NaN or negative.
    #[inline]
    pub fn from_f64(v: f64) -> Score {
        assert!(v.is_finite() && v >= 0.0, "score must be finite and >= 0");
        Score(v)
    }

    /// The raw value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// True if the score is exactly zero (feature cannot contribute).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    /// The larger of two scores.
    #[inline]
    pub fn max(self, other: Score) -> Score {
        if other > self {
            other
        } else {
            self
        }
    }
}

impl Eq for Score {}

impl PartialOrd for Score {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Score {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Display for Score {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

/// The set-similarity function used as the non-spatial score `w(f, q)`.
///
/// The paper fixes Jaccard (Definition 1); Dice and overlap are provided as
/// extensions so that the early-termination machinery can be exercised with
/// different bound tightnesses (see `upper_bound_by_len`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SetSimilarity {
    /// `|A ∩ B| / |A ∪ B|` — the paper's choice.
    #[default]
    Jaccard,
    /// `2|A ∩ B| / (|A| + |B|)`.
    Dice,
    /// `|A ∩ B| / min(|A|, |B|)`; its length bound is trivial (1), so
    /// eSPQlen degenerates to pSPQ under this similarity — which is why
    /// the paper's Equation-1 bound needs the union in the denominator.
    Overlap,
}

impl SetSimilarity {
    /// Computes the similarity `w(f, q)` between a query keyword set and a
    /// feature keyword set.
    pub fn score(self, query: &KeywordSet, feature: &KeywordSet) -> Score {
        let inter = query.intersection_len(feature);
        if inter == 0 {
            return Score::ZERO;
        }
        match self {
            SetSimilarity::Jaccard => Score::ratio(inter, query.len() + feature.len() - inter),
            SetSimilarity::Dice => Score::ratio(2 * inter, query.len() + feature.len()),
            SetSimilarity::Overlap => Score::ratio(inter, query.len().min(feature.len())),
        }
    }

    /// The best possible score of *any* feature with `feature_len` keywords
    /// against a query with `query_len` keywords.
    ///
    /// For Jaccard this is Equation 1 of the paper. The bound is
    /// monotonically non-increasing in `feature_len` once
    /// `feature_len >= query_len`, which is exactly the property Lemma 2
    /// needs: scanning features by increasing keyword length, the bound of
    /// the current feature dominates the score of every unseen feature.
    pub fn upper_bound_by_len(self, query_len: usize, feature_len: usize) -> Score {
        if query_len == 0 || feature_len == 0 {
            return Score::ZERO;
        }
        match self {
            SetSimilarity::Jaccard => {
                if feature_len < query_len {
                    Score::ONE
                } else {
                    Score::ratio(query_len, feature_len)
                }
            }
            SetSimilarity::Dice => {
                let best_inter = query_len.min(feature_len);
                Score::ratio(2 * best_inter, query_len + feature_len)
            }
            SetSimilarity::Overlap => Score::ONE,
        }
    }

    /// Whether `upper_bound_by_len` is non-increasing in the feature length
    /// for lengths `>= query_len`, i.e. whether eSPQlen's early termination
    /// can ever fire under this similarity.
    pub fn supports_length_termination(self) -> bool {
        !matches!(self, SetSimilarity::Overlap)
    }
}

/// Jaccard similarity (Definition 1): `w(f,q) = |q.W ∩ f.W| / |q.W ∪ f.W|`.
#[inline]
pub fn jaccard(query: &KeywordSet, feature: &KeywordSet) -> Score {
    SetSimilarity::Jaccard.score(query, feature)
}

/// The keyword-length upper bound of Equation 1 for Jaccard.
#[inline]
pub fn jaccard_upper_bound(query_len: usize, feature_len: usize) -> Score {
    SetSimilarity::Jaccard.upper_bound_by_len(query_len, feature_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ks(ids: &[u32]) -> KeywordSet {
        KeywordSet::from_ids(ids.iter().copied())
    }

    #[test]
    fn jaccard_matches_paper_example() {
        // Table 2: q.W = {italian}. f1 = {italian, gourmet} -> 0.5,
        // f4 = {italian} -> 1, f7 = {italian, spaghetti} -> 0.5,
        // f2 = {chinese, cheap} -> 0.
        let q = ks(&[0]); // italian
        assert_eq!(jaccard(&q, &ks(&[0, 1])), Score::ratio(1, 2));
        assert_eq!(jaccard(&q, &ks(&[0])), Score::ONE);
        assert_eq!(jaccard(&q, &ks(&[0, 2])), Score::ratio(1, 2));
        assert_eq!(jaccard(&q, &ks(&[3, 4])), Score::ZERO);
    }

    #[test]
    fn jaccard_symmetric() {
        let a = ks(&[1, 2, 3]);
        let b = ks(&[2, 3, 4, 5]);
        assert_eq!(jaccard(&a, &b), jaccard(&b, &a));
        assert_eq!(jaccard(&a, &b), Score::ratio(2, 5));
    }

    #[test]
    fn empty_sets_score_zero() {
        let e = KeywordSet::empty();
        assert_eq!(jaccard(&e, &e), Score::ZERO);
        assert_eq!(jaccard(&e, &ks(&[1])), Score::ZERO);
    }

    #[test]
    fn upper_bound_equation_one() {
        // |f.W| < |q.W| -> 1
        assert_eq!(jaccard_upper_bound(3, 1), Score::ONE);
        assert_eq!(jaccard_upper_bound(3, 2), Score::ONE);
        // |f.W| >= |q.W| -> |q.W| / |f.W|
        assert_eq!(jaccard_upper_bound(3, 3), Score::ONE);
        assert_eq!(jaccard_upper_bound(3, 6), Score::ratio(1, 2));
        assert_eq!(jaccard_upper_bound(1, 4), Score::ratio(1, 4));
    }

    #[test]
    fn upper_bound_zero_lengths() {
        assert_eq!(jaccard_upper_bound(0, 5), Score::ZERO);
        assert_eq!(jaccard_upper_bound(5, 0), Score::ZERO);
    }

    #[test]
    fn dice_and_overlap_scores() {
        let q = ks(&[1, 2]);
        let f = ks(&[2, 3, 4]);
        assert_eq!(SetSimilarity::Dice.score(&q, &f), Score::ratio(2, 5));
        assert_eq!(SetSimilarity::Overlap.score(&q, &f), Score::ratio(1, 2));
    }

    #[test]
    fn overlap_has_trivial_bound() {
        assert_eq!(
            SetSimilarity::Overlap.upper_bound_by_len(3, 100),
            Score::ONE
        );
        assert!(!SetSimilarity::Overlap.supports_length_termination());
        assert!(SetSimilarity::Jaccard.supports_length_termination());
        assert!(SetSimilarity::Dice.supports_length_termination());
    }

    #[test]
    fn score_ordering_total() {
        let mut v = vec![Score::ONE, Score::ZERO, Score::ratio(1, 2)];
        v.sort();
        assert_eq!(v, vec![Score::ZERO, Score::ratio(1, 2), Score::ONE]);
        assert!(Score::DATA_SENTINEL > Score::ONE);
    }

    #[test]
    fn score_max_and_display() {
        assert_eq!(Score::ZERO.max(Score::ONE), Score::ONE);
        assert_eq!(Score::ONE.max(Score::ZERO), Score::ONE);
        assert_eq!(Score::ratio(1, 2).to_string(), "0.5000");
    }

    #[test]
    #[should_panic]
    fn ratio_panics_on_zero_denominator() {
        let _ = Score::ratio(1, 0);
    }

    #[test]
    #[should_panic]
    fn from_f64_rejects_nan() {
        let _ = Score::from_f64(f64::NAN);
    }

    proptest! {
        /// Jaccard is always within [0, 1].
        #[test]
        fn prop_jaccard_bounded(a in proptest::collection::vec(0u32..64, 0..12),
                                b in proptest::collection::vec(0u32..64, 0..12)) {
            let (a, b) = (KeywordSet::from_ids(a), KeywordSet::from_ids(b));
            let s = jaccard(&a, &b);
            prop_assert!(s >= Score::ZERO && s <= Score::ONE);
        }

        /// Equation 1 dominates the true score for every similarity.
        #[test]
        fn prop_upper_bound_dominates(a in proptest::collection::vec(0u32..64, 1..12),
                                      b in proptest::collection::vec(0u32..64, 1..12)) {
            let (q, f) = (KeywordSet::from_ids(a), KeywordSet::from_ids(b));
            for sim in [SetSimilarity::Jaccard, SetSimilarity::Dice, SetSimilarity::Overlap] {
                let s = sim.score(&q, &f);
                let ub = sim.upper_bound_by_len(q.len(), f.len());
                prop_assert!(ub >= s, "{sim:?}: bound {ub} < score {s}");
            }
        }

        /// The Jaccard bound is non-increasing in feature length beyond
        /// |q.W| — the monotonicity Lemma 2 relies on.
        #[test]
        fn prop_bound_monotone(qlen in 1usize..16, flen in 1usize..64) {
            let b1 = jaccard_upper_bound(qlen, flen.max(qlen));
            let b2 = jaccard_upper_bound(qlen, flen.max(qlen) + 1);
            prop_assert!(b2 <= b1);
        }

        /// Identical sets score exactly 1 under Jaccard and Dice.
        #[test]
        fn prop_self_similarity(a in proptest::collection::vec(0u32..64, 1..12)) {
            let s = KeywordSet::from_ids(a);
            prop_assert_eq!(jaccard(&s, &s.clone()), Score::ONE);
            prop_assert_eq!(SetSimilarity::Dice.score(&s, &s.clone()), Score::ONE);
        }
    }
}
