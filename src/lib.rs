//! # spq — spatial preference queries using keywords, in parallel
//!
//! A Rust reproduction of *"Parallel and Distributed Processing of Spatial
//! Preference Queries using Keywords"* (Doulkeridis, Vlachou, Mpestas,
//! Mamoulis — EDBT 2017). Given a set of spatial **data objects**, a set of
//! spatio-textual **feature objects** and a query `q(k, r, W)`, the query
//! returns the top-`k` data objects ranked by the best textual relevance
//! (Jaccard similarity to `q.W`) of any feature object within distance `r`.
//!
//! The workspace implements the paper end to end:
//!
//! * [`mapreduce`] — an in-process MapReduce runtime (composite keys,
//!   custom partitioners, secondary sort, streaming reducers, counters and
//!   a simulated cluster scheduler).
//! * [`spatial`] — the query-time grid with Lemma-1 feature duplication.
//! * [`text`] — keyword sets, Jaccard scoring and the Equation-1 bound.
//! * [`core`] — the three algorithms (pSPQ, eSPQlen, eSPQsco), centralized
//!   baselines, the Section-6 cost theory, the persistent
//!   [`prelude::QueryEngine`] that builds the dataset store, partition
//!   routing and keyword index once and then serves an arbitrary query
//!   stream (single, batched, or concurrent), and the typed serving
//!   facade ([`prelude::SpqService`]: [`prelude::QueryRequest`] in,
//!   [`prelude::QueryResponse`] with per-query stats out) over pluggable
//!   execution backends — single-store or scatter/gather sharded.
//! * [`data`] — dataset generators (UN, CL, Flickr-like, Twitter-like) and
//!   query workloads.
//!
//! ## Quickstart
//!
//! ```
//! use spq::prelude::*;
//!
//! // Build a tiny dataset: hotels (data objects) and restaurants
//! // (feature objects annotated with keywords).
//! let mut vocab = Vocabulary::new();
//! let italian = vocab.intern("italian");
//! let sushi = vocab.intern("sushi");
//!
//! let hotels = vec![
//!     DataObject::new(0, Point::new(4.6, 4.8)),
//!     DataObject::new(1, Point::new(7.5, 1.7)),
//! ];
//! let restaurants = vec![
//!     FeatureObject::new(0, Point::new(3.8, 5.5), KeywordSet::new(vec![italian])),
//!     FeatureObject::new(1, Point::new(8.7, 1.9), KeywordSet::new(vec![sushi])),
//! ];
//!
//! let query = SpqQuery::new(1, 1.5, KeywordSet::new(vec![italian]));
//! let bounds = Rect::from_coords(0.0, 0.0, 10.0, 10.0);
//!
//! let result = SpqExecutor::new(bounds)
//!     .algorithm(Algorithm::ESpqSco)
//!     .grid_size(4)
//!     .run(&[hotels], &[restaurants], &query)
//!     .unwrap();
//!
//! assert_eq!(result.top_k[0].object, 0); // the hotel near the italian place
//! ```

pub use spq_core as core;
pub use spq_data as data;
pub use spq_mapreduce as mapreduce;
pub use spq_spatial as spatial;
pub use spq_text as text;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use spq_core::{
        export_metrics, AdmissionConfig, AdmissionQueue, AdmissionSnapshot, Algorithm, Backend,
        DataObject, ExecutionMode, FeatureObject, HistogramSnapshot, LatencyHistogram,
        LoadBalancing, MembershipConfig, MembershipView, MetricsSnapshot, ObjectRef,
        OverflowPolicy, PumpReport, QueryEngine, QueryExecutor, QueryOptions, QueryRequest,
        QueryResponse, QueryStats, RankedObject, RemoteEngine, ShardHost, ShardStats,
        ShardedEngine, SharedDataset, SpqError, SpqExecutor, SpqQuery, SpqResult, SpqService,
        TickOutcome, TickReport, Ticket, WorkerState,
    };
    pub use spq_data::{
        ingest_files, synthesize_dump, ClusteredGen, DatasetGenerator, DumpConfig, FlickrLike,
        IngestOptions, Ingested, MalformedPolicy, QueryStream, StreamConfig, TwitterLike,
        UniformGen,
    };
    pub use spq_mapreduce::ClusterConfig;
    pub use spq_spatial::{Grid, Point, Rect};
    pub use spq_text::{KeywordSet, Score, Term, Vocabulary};
}
