//! `spq-worker` — a standalone shard worker process.
//!
//! Listens for framed requests from a `RemoteEngine` manager (the
//! `remote:N` backend): `OP_PROVISION` ships a shard of the dataset plus
//! the executor configuration, `OP_SHARD_QUERY` evaluates a query against
//! a hosted shard. Fault plans installed via `OP_SET_FAULT` are **fatal**
//! here: a kill fault exits the process with code 86, exactly like a real
//! crash — which is what the cross-process fault tests exercise.
//!
//! Usage:
//!
//! ```text
//! spq-worker [--listen HOST:PORT] [--quiet]
//! ```
//!
//! The default `--listen 127.0.0.1:0` binds an ephemeral port; the chosen
//! address is printed to stdout as `spq-worker listening on HOST:PORT` so
//! a spawning manager (or test) can discover it. `--quiet` suppresses the
//! banner — the mode for a restarted worker rejoining a manager that
//! already knows its fixed address and re-admits it via health probes.

use spq::core::remote::ShardHost;
use spq::mapreduce::remote::WorkerServer;
use std::io::Write;

fn main() {
    let mut listen = String::from("127.0.0.1:0");
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => match args.next() {
                Some(addr) => listen = addr,
                None => die("--listen needs an address (HOST:PORT)"),
            },
            "--quiet" => quiet = true,
            "--help" | "-h" => {
                println!("usage: spq-worker [--listen HOST:PORT] [--quiet]");
                return;
            }
            other => die(&format!("unknown argument {other:?}")),
        }
    }
    let server = match WorkerServer::bind(&listen, vec![Box::new(ShardHost::new())], true) {
        Ok(server) => server,
        Err(e) => die(&format!("cannot bind {listen}: {e}")),
    };
    if !quiet {
        println!("spq-worker listening on {}", server.addr());
        let _ = std::io::stdout().flush();
    }
    server.wait();
}

fn die(message: &str) -> ! {
    eprintln!("spq-worker: {message}");
    std::process::exit(2);
}
