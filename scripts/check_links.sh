#!/usr/bin/env bash
# Checks that every relative markdown link in tracked *.md files points at
# a file (or directory) that actually exists. External links (http/https/
# mailto) and in-page anchors are skipped; `path#anchor` links are checked
# for the path part only. Exits non-zero listing every broken link.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
while IFS= read -r file; do
    dir=$(dirname "$file")
    # Markdown inline links: the (...) part of ](...), minus any title.
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        target="${target%% *}" # strip optional "title"
        case "$target" in
        http://* | https://* | mailto:* | \#*) continue ;;
        esac
        path="${target%%#*}"
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ]; then
            echo "broken link in $file: $target"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$file" | sed -E 's/^\]\(//; s/\)$//')
done < <(git ls-files '*.md')

if [ "$fail" -ne 0 ]; then
    echo "link check FAILED"
    exit 1
fi
echo "link check OK"
